// DiskManager: the simulated disk — in-memory paged files with I/O counters.
//
// Substitution note (see DESIGN.md): the 1977-era evaluations measure cost in
// page accesses, so an in-memory store that *counts* page reads and writes
// reproduces exactly the quantity of interest, deterministically and at
// laptop scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/io_counters.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace relopt {

/// Aggregate I/O counters.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;

  uint64_t total() const { return page_reads + page_writes; }
};

/// \brief Manages a set of paged "files" held in memory, counting every page
/// read/write. Thread-safe: file-map structure is mutex-guarded and the
/// global counters are atomic (plus thread-local tallies for attribution).
class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates an empty file and returns its id.
  FileId CreateFile();

  /// Removes a file and frees its pages. Idempotent.
  void DeleteFile(FileId file_id);

  /// True if the file exists.
  bool FileExists(FileId file_id) const;

  /// Appends a zeroed page to the file; returns its page number.
  Result<PageNo> AllocatePage(FileId file_id);

  /// Copies a page's 4 KiB into `out`. Counts one page read.
  Status ReadPage(PageId page_id, char* out);

  /// Overwrites a page from `data` (4 KiB). Counts one page write.
  Status WritePage(PageId page_id, const char* data);

  /// Number of pages currently in the file (0 if absent).
  size_t NumPages(FileId file_id) const;

  /// Snapshot of the global counters since construction or last ResetStats().
  IoStats stats() const;
  /// Per-file counters (zeroes if absent).
  IoStats FileStats(FileId file_id) const;
  void ResetStats();

 private:
  struct File {
    std::vector<std::unique_ptr<char[]>> pages;
    IoStats stats;
  };

  /// Requires `mu_` held.
  Result<File*> GetFileLocked(FileId file_id);

  mutable std::mutex mu_;  ///< guards files_, next_file_id_, per-file stats
  std::unordered_map<FileId, File> files_;
  FileId next_file_id_ = 1;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::atomic<uint64_t> pages_allocated_{0};
};

}  // namespace relopt
