#include "storage/slotted_page.h"

#include <cstring>

namespace relopt {

void SlottedPage::Init() {
  WriteU16(0, 0);                                   // num_slots
  WriteU16(2, static_cast<uint16_t>(kPageSize));    // free_end
}

uint16_t SlottedPage::ReadU16(size_t pos) const {
  uint16_t v;
  std::memcpy(&v, data_ + pos, sizeof(v));
  return v;
}

void SlottedPage::WriteU16(size_t pos, uint16_t v) { std::memcpy(data_ + pos, &v, sizeof(v)); }

uint16_t SlottedPage::NumSlots() const { return ReadU16(0); }

size_t SlottedPage::FreeSpace() const {
  size_t slots_end = kHeaderSize + static_cast<size_t>(NumSlots()) * kSlotSize;
  size_t free_end = FreeEnd();
  return free_end > slots_end ? free_end - slots_end : 0;
}

bool SlottedPage::HasRoomFor(size_t length) const {
  return FreeSpace() >= length + kSlotSize;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotSize) {
    return Status::InvalidArgument("record of " + std::to_string(record.size()) +
                                   " bytes exceeds page capacity");
  }
  if (!HasRoomFor(record.size())) {
    return Status::ResourceExhausted("page full");
  }
  uint16_t slot = NumSlots();
  uint16_t new_free_end = static_cast<uint16_t>(FreeEnd() - record.size());
  std::memcpy(data_ + new_free_end, record.data(), record.size());
  size_t slot_pos = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  WriteU16(slot_pos, new_free_end);
  WriteU16(slot_pos + 2, static_cast<uint16_t>(record.size()));
  WriteU16(0, static_cast<uint16_t>(slot + 1));
  WriteU16(2, new_free_end);
  return slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= NumSlots()) return Status::NotFound("slot out of range");
  size_t slot_pos = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  uint16_t offset = ReadU16(slot_pos);
  if (offset == kDeletedOffset) return Status::NotFound("slot deleted");
  uint16_t length = ReadU16(slot_pos + 2);
  return std::string_view(data_ + offset, length);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= NumSlots()) return Status::NotFound("slot out of range");
  size_t slot_pos = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  if (ReadU16(slot_pos) == kDeletedOffset) return Status::NotFound("slot already deleted");
  WriteU16(slot_pos, kDeletedOffset);
  return Status::OK();
}

bool SlottedPage::IsLive(uint16_t slot) const {
  if (slot >= NumSlots()) return false;
  size_t slot_pos = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  return ReadU16(slot_pos) != kDeletedOffset;
}

uint16_t SlottedPage::NumLive() const {
  uint16_t live = 0;
  for (uint16_t s = 0; s < NumSlots(); ++s) {
    if (IsLive(s)) ++live;
  }
  return live;
}

}  // namespace relopt
