#include "storage/buffer_pool.h"

#include <cstring>

#include "util/logging.h"
#include "util/metrics.h"

namespace relopt {

namespace {
/// Locks `mu`, counting contended acquisitions (pool latch waits) in the
/// global metrics registry. The uncontended fast path is one try_lock.
std::unique_lock<std::mutex> LockPoolMutex(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    EngineMetrics::Get().pool_latch_waits->Add(1);
    lock.lock();
  }
  return lock;
}
}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk), capacity_(capacity) {
  RELOPT_DCHECK(capacity >= 1);
}

BufferPool::~BufferPool() {
  Status st = FlushAll();
  if (!st.ok()) {
    RELOPT_LOG(kError) << "FlushAll on destruction failed: " << st.ToString();
  }
}

void BufferPool::TouchLruLocked(PageId page_id) {
  auto it = lru_pos_.find(page_id);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
  }
  lru_.push_front(page_id);
  lru_pos_[page_id] = lru_.begin();
}

Status BufferPool::EvictFrameLocked(PageId page_id) {
  auto it = frames_.find(page_id);
  RELOPT_DCHECK(it != frames_.end());
  PageFrame* frame = it->second.get();
  if (frame->dirty_) {
    RELOPT_RETURN_NOT_OK(disk_->WritePage(page_id, frame->data()));
    dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().pool_dirty_writebacks->Add(1);
  }
  auto pos = lru_pos_.find(page_id);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  frames_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().pool_evictions->Add(1);
  return Status::OK();
}

Status BufferPool::EnsureCapacityLocked() {
  if (frames_.size() < capacity_) return Status::OK();
  // Find the LRU unpinned frame (back of list = least recent).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto fit = frames_.find(*it);
    if (fit != frames_.end() && fit->second->pin_count_ == 0) {
      return EvictFrameLocked(*it);
    }
  }
  return Status::ResourceExhausted("buffer pool full: all " + std::to_string(capacity_) +
                                   " frames pinned");
}

Result<PageFrame*> BufferPool::FetchPage(PageId page_id) {
  std::unique_lock<std::mutex> lock = LockPoolMutex(mu_);
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().pool_hits->Add(1);
    LocalIoCounters().pool_hits++;
    it->second->pin_count_++;
    TouchLruLocked(page_id);
    return it->second.get();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().pool_misses->Add(1);
  LocalIoCounters().pool_misses++;
  RELOPT_RETURN_NOT_OK(EnsureCapacityLocked());
  auto frame = std::make_unique<PageFrame>();
  frame->page_id_ = page_id;
  frame->data_ = std::make_unique<char[]>(kPageSize);
  RELOPT_RETURN_NOT_OK(disk_->ReadPage(page_id, frame->data_.get()));
  frame->pin_count_ = 1;
  PageFrame* raw = frame.get();
  frames_[page_id] = std::move(frame);
  TouchLruLocked(page_id);
  return raw;
}

Result<PageFrame*> BufferPool::NewPage(FileId file_id) {
  std::unique_lock<std::mutex> lock = LockPoolMutex(mu_);
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, disk_->AllocatePage(file_id));
  PageId page_id{file_id, page_no};
  RELOPT_RETURN_NOT_OK(EnsureCapacityLocked());
  auto frame = std::make_unique<PageFrame>();
  frame->page_id_ = page_id;
  frame->data_ = std::make_unique<char[]>(kPageSize);
  std::memset(frame->data_.get(), 0, kPageSize);
  frame->pin_count_ = 1;
  frame->dirty_ = true;  // a new page must reach disk even if untouched
  PageFrame* raw = frame.get();
  frames_[page_id] = std::move(frame);
  TouchLruLocked(page_id);
  return raw;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::unique_lock<std::mutex> lock = LockPoolMutex(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) {
    return Status::NotFound("unpin of uncached page " + page_id.ToString());
  }
  PageFrame* frame = it->second.get();
  if (frame->pin_count_ <= 0) {
    return Status::Internal("unpin of unpinned page " + page_id.ToString());
  }
  frame->pin_count_--;
  frame->dirty_ = frame->dirty_ || dirty;
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return Status::OK();
  PageFrame* frame = it->second.get();
  if (frame->dirty_) {
    RELOPT_RETURN_NOT_OK(disk_->WritePage(page_id, frame->data()));
    frame->dirty_ = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame->dirty_) {
      RELOPT_RETURN_NOT_OK(disk_->WritePage(id, frame->data()));
      frame->dirty_ = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DropFilePages(FileId file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> to_drop;
  for (auto& [id, frame] : frames_) {
    if (id.file_id != file_id) continue;
    if (frame->pin_count_ != 0) {
      return Status::Internal("dropping pages of file " + std::to_string(file_id) +
                              " while page " + id.ToString() + " is pinned");
    }
    to_drop.push_back(id);
  }
  for (PageId id : to_drop) {
    auto pos = lru_pos_.find(id);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    frames_.erase(id);
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> unpinned;
  for (auto& [id, frame] : frames_) {
    if (frame->pin_count_ == 0) unpinned.push_back(id);
  }
  for (PageId id : unpinned) {
    RELOPT_RETURN_NOT_OK(EvictFrameLocked(id));
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.dirty_writebacks = dirty_writebacks_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  dirty_writebacks_.store(0, std::memory_order_relaxed);
}

size_t BufferPool::NumCached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace relopt
