// SlottedPage: variable-length record layout within one 4 KiB page.
//
// Layout:
//   [header: num_slots u16 | free_end u16]
//   [slot 0: offset u16 | length u16] [slot 1] ...        (grows forward)
//   ... free space ...
//   [record data]                                          (grows backward)
//
// A deleted slot has offset == kDeletedOffset; slot ids stay stable so RIDs
// remain valid. Deleted space is not compacted (documented simplification;
// the engine's workloads are append-then-read).
#pragma once

#include <cstdint>
#include <string_view>

#include "storage/page.h"
#include "util/result.h"

namespace relopt {

/// \brief View over a raw page buffer providing slotted-record access.
/// Does not own the buffer; the caller keeps the page pinned while using it.
class SlottedPage {
 public:
  static constexpr uint16_t kDeletedOffset = 0xFFFF;

  /// Wraps an existing page buffer (must be kPageSize bytes).
  explicit SlottedPage(char* data) : data_(data) {}

  /// Initializes an empty page (call once on a freshly allocated page).
  void Init();

  /// Number of slots ever allocated (including deleted).
  uint16_t NumSlots() const;

  /// Bytes available for one more record (includes its slot entry).
  size_t FreeSpace() const;

  /// True if a record of `length` bytes fits.
  bool HasRoomFor(size_t length) const;

  /// Inserts a record; returns its slot id, or ResourceExhausted if full.
  Result<uint16_t> Insert(std::string_view record);

  /// Returns the record bytes; NotFound for deleted/invalid slots.
  Result<std::string_view> Get(uint16_t slot) const;

  /// Marks a slot deleted; NotFound for already-deleted/invalid slots.
  Status Delete(uint16_t slot);

  /// True if the slot holds a live record.
  bool IsLive(uint16_t slot) const;

  /// Number of live (non-deleted) records.
  uint16_t NumLive() const;

 private:
  static constexpr size_t kHeaderSize = 4;      // num_slots + free_end
  static constexpr size_t kSlotSize = 4;        // offset + length

  uint16_t ReadU16(size_t pos) const;
  void WriteU16(size_t pos, uint16_t v);

  uint16_t FreeEnd() const { return ReadU16(2); }

  char* data_;
};

}  // namespace relopt
