#include "storage/heap_file.h"

#include <mutex>
#include <shared_mutex>

#include "storage/slotted_page.h"

namespace relopt {

HeapFile::HeapFile(BufferPool* pool, FileId file_id) : pool_(pool), file_id_(file_id) {
  size_t pages = pool_->disk()->NumPages(file_id_);
  if (pages > 0) {
    insert_hint_.store(static_cast<PageNo>(pages - 1), std::memory_order_relaxed);
  }
}

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  FileId id = pool->disk()->CreateFile();
  return HeapFile(pool, id);
}

size_t HeapFile::NumPages() const { return pool_->disk()->NumPages(file_id_); }

Result<Rid> HeapFile::Insert(std::string_view record) {
  // Try the hint page first.
  PageNo hint = insert_hint_.load(std::memory_order_relaxed);
  if (hint != kInvalidPageNo) {
    PageId pid{file_id_, hint};
    RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
    Result<uint16_t> slot{uint16_t{0}};
    bool fit;
    {
      std::unique_lock<std::shared_mutex> latch(frame->latch());
      SlottedPage page(frame->data());
      fit = page.HasRoomFor(record.size());
      if (fit) slot = page.Insert(record);
    }
    if (fit) {
      RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, slot.ok()));
      if (slot.ok()) return Rid{hint, *slot};
      return slot.status();
    }
    RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  }
  // Allocate a fresh page.
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->NewPage(file_id_));
  PageId pid = frame->page_id();
  Result<uint16_t> slot{uint16_t{0}};
  {
    std::unique_lock<std::shared_mutex> latch(frame->latch());
    SlottedPage page(frame->data());
    page.Init();
    slot = page.Insert(record);
  }
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, true));
  RELOPT_RETURN_NOT_OK(slot.status());
  insert_hint_.store(pid.page_no, std::memory_order_relaxed);
  return Rid{pid.page_no, *slot};
}

Result<std::string> HeapFile::Get(Rid rid) const {
  PageId pid{file_id_, rid.page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  Result<std::string_view> rec{std::string_view{}};
  std::string out;
  {
    std::shared_lock<std::shared_mutex> latch(frame->latch());
    SlottedPage page(frame->data());
    rec = page.Get(rid.slot);
    if (rec.ok()) out = std::string(*rec);
  }
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  RELOPT_RETURN_NOT_OK(rec.status());
  return out;
}

Status HeapFile::Delete(Rid rid) {
  PageId pid{file_id_, rid.page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  Status st;
  {
    std::unique_lock<std::shared_mutex> latch(frame->latch());
    SlottedPage page(frame->data());
    st = page.Delete(rid.slot);
  }
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, st.ok()));
  return st;
}

Status HeapFile::PageCursor::Open(PageNo page_no) {
  RELOPT_RETURN_NOT_OK(Close());
  PageId pid{heap_->file_id(), page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, heap_->pool()->FetchPage(pid));
  frame_ = frame;
  frame_->latch().lock_shared();
  page_no_ = page_no;
  slot_ = 0;
  num_slots_ = SlottedPage(frame_->data()).NumSlots();
  return Status::OK();
}

Result<bool> HeapFile::PageCursor::Next(Rid* rid, std::string_view* record) {
  if (frame_ == nullptr) return false;
  SlottedPage page(frame_->data());
  while (slot_ < num_slots_) {
    uint16_t s = slot_++;
    if (!page.IsLive(s)) continue;
    RELOPT_ASSIGN_OR_RETURN(*record, page.Get(s));
    *rid = Rid{page_no_, s};
    return true;
  }
  return false;
}

Status HeapFile::PageCursor::Close() {
  if (frame_ == nullptr) return Status::OK();
  frame_->latch().unlock_shared();
  frame_ = nullptr;
  return heap_->pool()->UnpinPage(PageId{heap_->file_id(), page_no_}, false);
}

Result<bool> HeapFile::ViewIterator::Next(Rid* rid, std::string_view* record) {
  while (true) {
    if (cursor_.IsOpen()) {
      RELOPT_ASSIGN_OR_RETURN(bool has, cursor_.Next(rid, record));
      if (has) return true;
      RELOPT_RETURN_NOT_OK(cursor_.Close());
    }
    if (next_page_ >= heap_->NumPages()) return false;
    RELOPT_RETURN_NOT_OK(cursor_.Open(next_page_++));
  }
}

Status HeapFile::ViewIterator::Reset() {
  next_page_ = 0;
  return cursor_.Close();
}

HeapFile::Iterator::Iterator(const HeapFile* heap) : heap_(heap) {}

void HeapFile::Iterator::Reset() {
  page_no_ = 0;
  slot_ = 0;
}

Result<bool> HeapFile::Iterator::Next(Rid* rid, std::string* record) {
  size_t num_pages = heap_->NumPages();
  while (page_no_ < num_pages) {
    PageId pid{heap_->file_id_, page_no_};
    RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, heap_->pool_->FetchPage(pid));
    Status bad;
    bool found = false;
    {
      std::shared_lock<std::shared_mutex> latch(frame->latch());
      SlottedPage page(frame->data());
      uint16_t num_slots = page.NumSlots();
      while (slot_ < num_slots) {
        uint16_t s = slot_++;
        if (!page.IsLive(s)) continue;
        Result<std::string_view> rec = page.Get(s);
        if (!rec.ok()) {
          bad = rec.status();
          break;
        }
        *record = std::string(*rec);
        *rid = Rid{page_no_, s};
        found = true;
        break;
      }
    }
    RELOPT_RETURN_NOT_OK(heap_->pool_->UnpinPage(pid, false));
    RELOPT_RETURN_NOT_OK(bad);
    if (found) return true;
    page_no_++;
    slot_ = 0;
  }
  return false;
}

}  // namespace relopt
