#include "storage/heap_file.h"

#include "storage/slotted_page.h"

namespace relopt {

HeapFile::HeapFile(BufferPool* pool, FileId file_id) : pool_(pool), file_id_(file_id) {
  size_t pages = pool_->disk()->NumPages(file_id_);
  if (pages > 0) insert_hint_ = static_cast<PageNo>(pages - 1);
}

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  FileId id = pool->disk()->CreateFile();
  return HeapFile(pool, id);
}

size_t HeapFile::NumPages() const { return pool_->disk()->NumPages(file_id_); }

Result<Rid> HeapFile::Insert(std::string_view record) {
  // Try the hint page first.
  if (insert_hint_ != kInvalidPageNo) {
    PageId pid{file_id_, insert_hint_};
    RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
    SlottedPage page(frame->data());
    if (page.HasRoomFor(record.size())) {
      Result<uint16_t> slot = page.Insert(record);
      RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, slot.ok()));
      if (slot.ok()) return Rid{insert_hint_, *slot};
      return slot.status();
    }
    RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  }
  // Allocate a fresh page.
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->NewPage(file_id_));
  PageId pid = frame->page_id();
  SlottedPage page(frame->data());
  page.Init();
  Result<uint16_t> slot = page.Insert(record);
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, true));
  RELOPT_RETURN_NOT_OK(slot.status());
  insert_hint_ = pid.page_no;
  return Rid{pid.page_no, *slot};
}

Result<std::string> HeapFile::Get(Rid rid) const {
  PageId pid{file_id_, rid.page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  SlottedPage page(frame->data());
  Result<std::string_view> rec = page.Get(rid.slot);
  std::string out;
  if (rec.ok()) out = std::string(*rec);
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  RELOPT_RETURN_NOT_OK(rec.status());
  return out;
}

Status HeapFile::Delete(Rid rid) {
  PageId pid{file_id_, rid.page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  SlottedPage page(frame->data());
  Status st = page.Delete(rid.slot);
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, st.ok()));
  return st;
}

HeapFile::Iterator::Iterator(const HeapFile* heap) : heap_(heap) {}

void HeapFile::Iterator::Reset() {
  page_no_ = 0;
  slot_ = 0;
}

Result<bool> HeapFile::Iterator::Next(Rid* rid, std::string* record) {
  size_t num_pages = heap_->NumPages();
  while (page_no_ < num_pages) {
    PageId pid{heap_->file_id_, page_no_};
    RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, heap_->pool_->FetchPage(pid));
    SlottedPage page(frame->data());
    uint16_t num_slots = page.NumSlots();
    while (slot_ < num_slots) {
      uint16_t s = slot_++;
      if (!page.IsLive(s)) continue;
      Result<std::string_view> rec = page.Get(s);
      if (!rec.ok()) {
        RELOPT_RETURN_NOT_OK(heap_->pool_->UnpinPage(pid, false));
        return rec.status();
      }
      *record = std::string(*rec);
      *rid = Rid{page_no_, s};
      RELOPT_RETURN_NOT_OK(heap_->pool_->UnpinPage(pid, false));
      return true;
    }
    RELOPT_RETURN_NOT_OK(heap_->pool_->UnpinPage(pid, false));
    page_no_++;
    slot_ = 0;
  }
  return false;
}

}  // namespace relopt
