// HeapFile: unordered collection of records in slotted pages.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/result.h"

namespace relopt {

/// \brief A heap of variable-length records over one DiskManager file.
///
/// Records are appended to the last page with room (append-only placement —
/// the classic heap organization the foundational cost models assume, where
/// |pages| ~= N · record_size / page_size). Deletes leave holes.
class HeapFile {
 public:
  /// Opens (or starts) a heap over `file_id`, which must exist in the disk
  /// manager. A brand-new file gets its first page lazily on insert.
  HeapFile(BufferPool* pool, FileId file_id);

  /// Creates a new file in `disk` and a heap over it.
  static Result<HeapFile> Create(BufferPool* pool);

  // A HeapFile is a lightweight handle (pool + file id + hint); copies are
  // views of the same file. Spelled out because the hint is atomic. Copying
  // a heap that other threads are actively using is not supported.
  HeapFile(const HeapFile& other)
      : pool_(other.pool_),
        file_id_(other.file_id_),
        insert_hint_(other.insert_hint_.load(std::memory_order_relaxed)) {}
  HeapFile& operator=(const HeapFile& other) {
    pool_ = other.pool_;
    file_id_ = other.file_id_;
    insert_hint_.store(other.insert_hint_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  FileId file_id() const { return file_id_; }
  BufferPool* pool() const { return pool_; }

  /// Number of pages in the heap.
  size_t NumPages() const;

  /// Inserts a record, returning its RID.
  Result<Rid> Insert(std::string_view record);

  /// Reads the record at `rid` into an owned string.
  Result<std::string> Get(Rid rid) const;

  /// Deletes the record at `rid`.
  Status Delete(Rid rid);

  /// \brief Forward scanner over all live records, page at a time.
  ///
  /// Usage:
  ///   HeapFile::Iterator it(heap);
  ///   while (true) {
  ///     RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
  ///     if (!has) break; ...
  ///   }
  class Iterator {
   public:
    explicit Iterator(const HeapFile* heap);

    /// Advances to the next live record. Returns false at end.
    Result<bool> Next(Rid* rid, std::string* record);

    /// Restarts the scan from the beginning.
    void Reset();

   private:
    const HeapFile* heap_;
    PageNo page_no_ = 0;
    uint16_t slot_ = 0;
  };

  /// \brief Pins one page at a time and yields zero-copy views of its live
  /// records.
  ///
  /// Unlike Iterator (which re-pins the page and copies the bytes into an
  /// owned string for every record), the cursor holds the open page pinned
  /// with its shared latch until Open()/Close(), so a scan costs one pool
  /// access and one latch acquisition per page and zero allocations per
  /// record. Views returned by Next() stay valid until the page is released.
  /// Scans and same-heap writers never run concurrently in this engine; the
  /// held shared latch makes that assumption checkable under TSan.
  class PageCursor {
   public:
    explicit PageCursor(const HeapFile* heap) : heap_(heap) {}
    ~PageCursor() { (void)Close(); }

    PageCursor(const PageCursor&) = delete;
    PageCursor& operator=(const PageCursor&) = delete;

    /// Pins `page_no` (releasing any open page) and rewinds to its first slot.
    Status Open(PageNo page_no);
    /// Next live record of the open page; false once the page is exhausted
    /// (the page stays pinned until Close/Open so views remain valid).
    Result<bool> Next(Rid* rid, std::string_view* record);
    /// Unpins the open page; idempotent.
    Status Close();
    bool IsOpen() const { return frame_ != nullptr; }

   private:
    const HeapFile* heap_;
    PageFrame* frame_ = nullptr;
    PageNo page_no_ = 0;
    uint16_t slot_ = 0;
    uint16_t num_slots_ = 0;
  };

  /// \brief Whole-heap forward scanner over record views: PageCursor driven
  /// across pages 0..NumPages(). The allocation-free replacement for
  /// Iterator on the query hot path (both row- and batch-mode scans).
  ///
  /// The view from Next() is invalidated by the next page boundary, so
  /// callers must consume it before advancing past the current page's
  /// records — deserializing immediately (as SeqScan does) is always safe.
  class ViewIterator {
   public:
    explicit ViewIterator(const HeapFile* heap) : heap_(heap), cursor_(heap) {}

    /// Advances to the next live record. Returns false at end.
    Result<bool> Next(Rid* rid, std::string_view* record);

    /// Releases the pinned page and restarts the scan from the beginning.
    Status Reset();

   private:
    const HeapFile* heap_;
    PageCursor cursor_;
    PageNo next_page_ = 0;
  };

 private:
  BufferPool* pool_;
  FileId file_id_;
  // Hint: page most likely to have room (last page we inserted into).
  // Atomic so concurrent inserters race benignly (a stale hint only costs an
  // extra fit check, never correctness).
  std::atomic<PageNo> insert_hint_{kInvalidPageNo};
};

}  // namespace relopt
