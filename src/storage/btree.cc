#include "storage/btree.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace relopt {

namespace {

constexpr uint32_t kMetaMagic = 0xB7EE0001;
constexpr size_t kNodeHeaderSize = 8;  // is_leaf u8 | pad u8 | num u16 | next/leftmost u32
constexpr size_t kMaxKeySize = 1024;

/// Entries are ordered by (key, rid) so duplicates are distinct and never
/// straddle ambiguously across splits.
int CompareEntry(const std::string& ak, Rid ar, const std::string& bk, Rid br) {
  int c = ak.compare(bk);
  if (c != 0) return c < 0 ? -1 : 1;
  if (ar.page_no != br.page_no) return ar.page_no < br.page_no ? -1 : 1;
  if (ar.slot != br.slot) return ar.slot < br.slot ? -1 : 1;
  return 0;
}

const Rid kMinRid{0, 0};
const Rid kMaxRid{kInvalidPageNo, 0xFFFF};

void PutU16(std::string* out, uint16_t v) { out->append(reinterpret_cast<char*>(&v), 2); }
void PutU32(std::string* out, uint32_t v) { out->append(reinterpret_cast<char*>(&v), 4); }

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

size_t BTree::Node::SerializedSize() const {
  size_t size = kNodeHeaderSize;
  for (const Entry& e : entries) {
    size += 2 + e.key.size() + 6;        // key_len + key + rid
    if (!is_leaf) size += 4;             // child pointer
  }
  return size;
}

BTree::BTree(BufferPool* pool, FileId file_id) : pool_(pool), file_id_(file_id) {}

Result<BTree> BTree::Create(BufferPool* pool) {
  FileId file_id = pool->disk()->CreateFile();
  BTree tree(pool, file_id);
  // Meta page (page 0).
  RELOPT_ASSIGN_OR_RETURN(PageFrame * meta, pool->NewPage(file_id));
  RELOPT_DCHECK(meta->page_id().page_no == 0);
  // Root: an empty leaf (page 1).
  Node root;
  root.is_leaf = true;
  RELOPT_ASSIGN_OR_RETURN(PageNo root_page, tree.AllocateNode(root));
  std::memcpy(meta->data(), &kMetaMagic, 4);
  std::memcpy(meta->data() + 4, &root_page, 4);
  RELOPT_RETURN_NOT_OK(pool->UnpinPage(meta->page_id(), true));
  return tree;
}

Result<PageNo> BTree::RootPage() {
  PageId pid{file_id_, 0};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * meta, pool_->FetchPage(pid));
  uint32_t magic = GetU32(meta->data());
  PageNo root = GetU32(meta->data() + 4);
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  if (magic != kMetaMagic) return Status::Internal("bad btree meta page");
  return root;
}

Status BTree::SetRootPage(PageNo root) {
  PageId pid{file_id_, 0};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * meta, pool_->FetchPage(pid));
  std::memcpy(meta->data() + 4, &root, 4);
  return pool_->UnpinPage(pid, true);
}

Result<BTree::Node> BTree::LoadNode(PageNo page_no) {
  PageId pid{file_id_, page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  const char* p = frame->data();
  Node node;
  node.is_leaf = p[0] != 0;
  uint16_t num = GetU16(p + 2);
  uint32_t link = GetU32(p + 4);
  if (node.is_leaf) {
    node.next = link;
  } else {
    node.leftmost_child = link;
  }
  size_t off = kNodeHeaderSize;
  node.entries.resize(num);
  for (uint16_t i = 0; i < num; ++i) {
    uint16_t klen = GetU16(p + off);
    off += 2;
    node.entries[i].key.assign(p + off, klen);
    off += klen;
    node.entries[i].rid.page_no = GetU32(p + off);
    off += 4;
    node.entries[i].rid.slot = GetU16(p + off);
    off += 2;
    if (!node.is_leaf) {
      node.entries[i].child = GetU32(p + off);
      off += 4;
    }
  }
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(pid, false));
  return node;
}

Status BTree::StoreNode(PageNo page_no, const Node& node) {
  RELOPT_DCHECK(node.SerializedSize() <= kPageSize);
  std::string buf;
  buf.reserve(node.SerializedSize());
  buf.push_back(node.is_leaf ? 1 : 0);
  buf.push_back(0);
  PutU16(&buf, static_cast<uint16_t>(node.entries.size()));
  PutU32(&buf, node.is_leaf ? node.next : node.leftmost_child);
  for (const Node::Entry& e : node.entries) {
    PutU16(&buf, static_cast<uint16_t>(e.key.size()));
    buf.append(e.key);
    PutU32(&buf, e.rid.page_no);
    PutU16(&buf, e.rid.slot);
    if (!node.is_leaf) PutU32(&buf, e.child);
  }
  PageId pid{file_id_, page_no};
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->FetchPage(pid));
  std::memcpy(frame->data(), buf.data(), buf.size());
  return pool_->UnpinPage(pid, true);
}

Result<PageNo> BTree::AllocateNode(const Node& node) {
  RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, pool_->NewPage(file_id_));
  PageNo page_no = frame->page_id().page_no;
  RELOPT_RETURN_NOT_OK(pool_->UnpinPage(frame->page_id(), true));
  RELOPT_RETURN_NOT_OK(StoreNode(page_no, node));
  return page_no;
}

Result<PageNo> BTree::FindLeaf(const std::string& key,
                               std::vector<std::pair<PageNo, size_t>>* path) {
  // Composite target (key, kMinRid): descends to the leftmost leaf that can
  // contain `key`.
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, RootPage());
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) return page_no;
    // child index = number of separators <= (key, kMinRid)
    size_t ci = 0;
    while (ci < node.entries.size() &&
           CompareEntry(node.entries[ci].key, node.entries[ci].rid, key, kMinRid) <= 0) {
      ++ci;
    }
    if (path) path->push_back({page_no, ci});
    page_no = ci == 0 ? node.leftmost_child : node.entries[ci - 1].child;
  }
}

Result<std::pair<std::string, PageNo>> BTree::SplitNode(PageNo page_no, Node* node) {
  size_t mid = node->entries.size() / 2;
  RELOPT_DCHECK(mid > 0 && mid < node->entries.size());
  Node right;
  right.is_leaf = node->is_leaf;
  std::string sep_key;
  Rid sep_rid;
  if (node->is_leaf) {
    right.entries.assign(node->entries.begin() + mid, node->entries.end());
    node->entries.resize(mid);
    sep_key = right.entries.front().key;
    sep_rid = right.entries.front().rid;
    RELOPT_ASSIGN_OR_RETURN(PageNo right_page, AllocateNode(right));
    // Fix sibling chain after allocation (right.next must be set first).
    right.next = node->next;
    RELOPT_RETURN_NOT_OK(StoreNode(right_page, right));
    node->next = right_page;
    RELOPT_RETURN_NOT_OK(StoreNode(page_no, *node));
    // Encode the rid tiebreak into the separator by storing it in the parent
    // entry; the caller carries both.
    std::string sep;
    sep = sep_key;
    (void)sep_rid;
    return std::make_pair(sep, right_page);
  }
  // Internal: middle entry's key moves up; its child becomes right's leftmost.
  right.leftmost_child = node->entries[mid].child;
  std::string sep = node->entries[mid].key;
  right.entries.assign(node->entries.begin() + mid + 1, node->entries.end());
  node->entries.resize(mid);
  RELOPT_ASSIGN_OR_RETURN(PageNo right_page, AllocateNode(right));
  RELOPT_RETURN_NOT_OK(StoreNode(page_no, *node));
  return std::make_pair(sep, right_page);
}

Status BTree::Insert(const std::string& key, Rid rid) {
  if (key.size() > kMaxKeySize) {
    return Status::InvalidArgument("index key exceeds " + std::to_string(kMaxKeySize) + " bytes");
  }
  std::vector<std::pair<PageNo, size_t>> path;
  // Descend by the composite (key, rid) so equal keys order by rid.
  RELOPT_ASSIGN_OR_RETURN(PageNo root, RootPage());
  PageNo page_no = root;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) break;
    size_t ci = 0;
    while (ci < node.entries.size() &&
           CompareEntry(node.entries[ci].key, node.entries[ci].rid, key, rid) <= 0) {
      ++ci;
    }
    path.push_back({page_no, ci});
    page_no = ci == 0 ? node.leftmost_child : node.entries[ci - 1].child;
  }

  RELOPT_ASSIGN_OR_RETURN(Node leaf, LoadNode(page_no));
  auto it = std::upper_bound(
      leaf.entries.begin(), leaf.entries.end(), std::make_pair(key, rid),
      [](const std::pair<std::string, Rid>& target, const Node::Entry& e) {
        return CompareEntry(target.first, target.second, e.key, e.rid) < 0;
      });
  Node::Entry entry;
  entry.key = key;
  entry.rid = rid;
  leaf.entries.insert(it, std::move(entry));

  if (leaf.SerializedSize() <= kPageSize) {
    return StoreNode(page_no, leaf);
  }

  // Split the leaf and propagate separators upward.
  RELOPT_ASSIGN_OR_RETURN(auto split, SplitNode(page_no, &leaf));
  std::string sep_key = split.first;
  PageNo right_page = split.second;
  // The separator rid is the first rid of the right node.
  RELOPT_ASSIGN_OR_RETURN(Node right_node, LoadNode(right_page));
  Rid sep_rid = right_node.is_leaf && !right_node.entries.empty() ? right_node.entries.front().rid
                                                                  : kMinRid;

  while (!path.empty()) {
    auto [parent_page, ci] = path.back();
    path.pop_back();
    RELOPT_ASSIGN_OR_RETURN(Node parent, LoadNode(parent_page));
    Node::Entry sep_entry;
    sep_entry.key = sep_key;
    sep_entry.rid = sep_rid;
    sep_entry.child = right_page;
    parent.entries.insert(parent.entries.begin() + ci, std::move(sep_entry));
    if (parent.SerializedSize() <= kPageSize) {
      return StoreNode(parent_page, parent);
    }
    // Internal split: remember the promoted separator's rid before SplitNode
    // discards it.
    size_t mid = parent.entries.size() / 2;
    Rid promoted_rid = parent.entries[mid].rid;
    RELOPT_ASSIGN_OR_RETURN(auto psplit, SplitNode(parent_page, &parent));
    sep_key = psplit.first;
    sep_rid = promoted_rid;
    right_page = psplit.second;
    page_no = parent_page;
  }

  // Root split: grow the tree by one level.
  Node new_root;
  new_root.is_leaf = false;
  new_root.leftmost_child = root;
  Node::Entry e;
  e.key = sep_key;
  e.rid = sep_rid;
  e.child = right_page;
  new_root.entries.push_back(std::move(e));
  RELOPT_ASSIGN_OR_RETURN(PageNo new_root_page, AllocateNode(new_root));
  return SetRootPage(new_root_page);
}

Status BTree::Delete(const std::string& key, Rid rid) {
  RELOPT_ASSIGN_OR_RETURN(PageNo root, RootPage());
  PageNo page_no = root;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (CompareEntry(node.entries[i].key, node.entries[i].rid, key, rid) == 0) {
          node.entries.erase(node.entries.begin() + i);
          return StoreNode(page_no, node);
        }
      }
      return Status::NotFound("key not in index");
    }
    size_t ci = 0;
    while (ci < node.entries.size() &&
           CompareEntry(node.entries[ci].key, node.entries[ci].rid, key, rid) <= 0) {
      ++ci;
    }
    page_no = ci == 0 ? node.leftmost_child : node.entries[ci - 1].child;
  }
}

Result<std::vector<Rid>> BTree::SearchEqual(const std::string& key) {
  std::vector<Rid> out;
  RELOPT_ASSIGN_OR_RETURN(Iterator it, Iterator::Seek(this, key, /*lo_inclusive=*/true, key,
                                                      /*hi_inclusive=*/true));
  std::string k;
  Rid rid;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&k, &rid));
    if (!has) break;
    out.push_back(rid);
  }
  return out;
}

Result<int> BTree::Height() {
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, RootPage());
  int height = 1;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) return height;
    page_no = node.leftmost_child;
    ++height;
  }
}

Result<size_t> BTree::NumEntries() {
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, RootPage());
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) break;
    page_no = node.leftmost_child;
  }
  size_t count = 0;
  while (page_no != kInvalidPageNo) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    count += node.entries.size();
    page_no = node.next;
  }
  return count;
}

Result<size_t> BTree::NumLeafPages() {
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, RootPage());
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    if (node.is_leaf) break;
    page_no = node.leftmost_child;
  }
  size_t count = 0;
  while (page_no != kInvalidPageNo) {
    RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    ++count;
    page_no = node.next;
  }
  return count;
}

Status BTree::CheckNode(PageNo page_no, const std::string* lo, const std::string* hi,
                        bool is_root, int depth, int* leaf_depth) {
  RELOPT_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
  // Entries sorted by (key, rid).
  for (size_t i = 1; i < node.entries.size(); ++i) {
    if (CompareEntry(node.entries[i - 1].key, node.entries[i - 1].rid, node.entries[i].key,
                     node.entries[i].rid) > 0) {
      return Status::Internal("node " + std::to_string(page_no) + " keys out of order");
    }
  }
  for (const Node::Entry& e : node.entries) {
    if (lo && e.key < *lo) return Status::Internal("key below lower bound");
    if (hi && e.key > *hi) return Status::Internal("key above upper bound");
  }
  if (node.is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at unequal depth");
    }
    return Status::OK();
  }
  if (!is_root && node.entries.empty()) {
    return Status::Internal("internal node with no separators");
  }
  // Recurse with separator bounds (keys only; rid tiebreak allows equality at
  // the boundary).
  const std::string* child_lo = lo;
  for (size_t i = 0; i <= node.entries.size(); ++i) {
    PageNo child = i == 0 ? node.leftmost_child : node.entries[i - 1].child;
    const std::string* child_hi = i < node.entries.size() ? &node.entries[i].key : hi;
    RELOPT_RETURN_NOT_OK(CheckNode(child, child_lo, child_hi, false, depth + 1, leaf_depth));
    if (i < node.entries.size()) child_lo = &node.entries[i].key;
  }
  return Status::OK();
}

Status BTree::CheckIntegrity() {
  RELOPT_ASSIGN_OR_RETURN(PageNo root, RootPage());
  int leaf_depth = -1;
  return CheckNode(root, nullptr, nullptr, true, 0, &leaf_depth);
}

Result<BTree::Iterator> BTree::Iterator::Seek(BTree* tree, std::optional<std::string> lo,
                                              bool lo_inclusive, std::optional<std::string> hi,
                                              bool hi_inclusive) {
  Iterator it(tree, std::move(hi), hi_inclusive);
  // Descend using the composite bound: inclusive -> (lo, kMinRid); exclusive
  // -> (lo, kMaxRid) so every entry with key == lo is skipped.
  std::string seek_key = lo.value_or("");
  Rid seek_rid = lo_inclusive ? kMinRid : kMaxRid;
  RELOPT_ASSIGN_OR_RETURN(PageNo page_no, tree->RootPage());
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(Node node, tree->LoadNode(page_no));
    if (node.is_leaf) {
      size_t pos = 0;
      while (pos < node.entries.size() &&
             CompareEntry(node.entries[pos].key, node.entries[pos].rid, seek_key, seek_rid) < 0) {
        ++pos;
      }
      it.leaf_ = page_no;
      it.pos_ = pos;
      return it;
    }
    size_t ci = 0;
    while (ci < node.entries.size() &&
           CompareEntry(node.entries[ci].key, node.entries[ci].rid, seek_key, seek_rid) <= 0) {
      ++ci;
    }
    page_no = ci == 0 ? node.leftmost_child : node.entries[ci - 1].child;
  }
}

Result<bool> BTree::Iterator::Next(std::string* key, Rid* rid) {
  while (leaf_ != kInvalidPageNo) {
    if (!cached_.has_value()) {
      RELOPT_ASSIGN_OR_RETURN(Node node, tree_->LoadNode(leaf_));
      cached_ = std::move(node);
    }
    const Node& node = *cached_;
    if (pos_ < node.entries.size()) {
      const Node::Entry& e = node.entries[pos_];
      if (hi_.has_value()) {
        int c = e.key.compare(*hi_);
        if (c > 0 || (c == 0 && !hi_inclusive_)) {
          leaf_ = kInvalidPageNo;
          return false;
        }
      }
      *key = e.key;
      *rid = e.rid;
      ++pos_;
      return true;
    }
    leaf_ = node.next;
    pos_ = 0;
    cached_.reset();
  }
  return false;
}

}  // namespace relopt
