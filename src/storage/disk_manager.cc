#include "storage/disk_manager.h"

#include <cstring>

#include "util/metrics.h"

namespace relopt {

FileId DiskManager::CreateFile() {
  std::lock_guard<std::mutex> lock(mu_);
  FileId id = next_file_id_++;
  files_.emplace(id, File{});
  return id;
}

void DiskManager::DeleteFile(FileId file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(file_id);
}

bool DiskManager::FileExists(FileId file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(file_id) > 0;
}

Result<DiskManager::File*> DiskManager::GetFileLocked(FileId file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status::NotFound("file " + std::to_string(file_id) + " does not exist");
  }
  return &it->second;
}

Result<PageNo> DiskManager::AllocatePage(FileId file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  RELOPT_ASSIGN_OR_RETURN(File * file, GetFileLocked(file_id));
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  file->pages.push_back(std::move(page));
  file->stats.pages_allocated++;
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().disk_pages_allocated->Add(1);
  return static_cast<PageNo>(file->pages.size() - 1);
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  RELOPT_ASSIGN_OR_RETURN(File * file, GetFileLocked(page_id.file_id));
  if (page_id.page_no >= file->pages.size()) {
    return Status::OutOfRange("read past end of file " + page_id.ToString());
  }
  std::memcpy(out, file->pages[page_id.page_no].get(), kPageSize);
  file->stats.page_reads++;
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().disk_page_reads->Add(1);
  LocalIoCounters().page_reads++;
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  RELOPT_ASSIGN_OR_RETURN(File * file, GetFileLocked(page_id.file_id));
  if (page_id.page_no >= file->pages.size()) {
    return Status::OutOfRange("write past end of file " + page_id.ToString());
  }
  std::memcpy(file->pages[page_id.page_no].get(), data, kPageSize);
  file->stats.page_writes++;
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().disk_page_writes->Add(1);
  LocalIoCounters().page_writes++;
  return Status::OK();
}

size_t DiskManager::NumPages(FileId file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file_id);
  return it == files_.end() ? 0 : it->second.pages.size();
}

IoStats DiskManager::stats() const {
  IoStats s;
  s.page_reads = page_reads_.load(std::memory_order_relaxed);
  s.page_writes = page_writes_.load(std::memory_order_relaxed);
  s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
  return s;
}

IoStats DiskManager::FileStats(FileId file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file_id);
  return it == files_.end() ? IoStats{} : it->second.stats;
}

void DiskManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
  pages_allocated_.store(0, std::memory_order_relaxed);
  for (auto& [id, file] : files_) file.stats = IoStats{};
}

}  // namespace relopt
