// Constant folding and boolean simplification.
#pragma once

#include "expr/expression.h"

namespace relopt {

/// \brief Folds constant subtrees and simplifies trivial boolean structure.
///
/// Rules: any operator whose operands are all literals is evaluated once;
/// `x AND false -> false`, `x AND true -> x`, `x OR true -> true`,
/// `x OR false -> x`, `NOT literal -> literal`. Folding never changes SQL
/// NULL semantics (NULL literals fold like any other value). The input need
/// not be bound.
ExprPtr FoldConstants(ExprPtr expr);

}  // namespace relopt
