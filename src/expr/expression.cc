#include "expr/expression.h"

#include <cmath>

#include "util/logging.h"

namespace relopt {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

const char* ScalarFuncToString(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kAbs:
      return "abs";
    case ScalarFunc::kLength:
      return "length";
    case ScalarFunc::kUpper:
      return "upper";
    case ScalarFunc::kLower:
      return "lower";
    case ScalarFunc::kCoalesce:
      return "coalesce";
    case ScalarFunc::kNullIf:
      return "nullif";
  }
  return "?";
}

bool LookupScalarFunc(const std::string& name, ScalarFunc* out) {
  if (name == "abs") *out = ScalarFunc::kAbs;
  else if (name == "length") *out = ScalarFunc::kLength;
  else if (name == "upper") *out = ScalarFunc::kUpper;
  else if (name == "lower") *out = ScalarFunc::kLower;
  else if (name == "coalesce") *out = ScalarFunc::kCoalesce;
  else if (name == "nullif") *out = ScalarFunc::kNullIf;
  else return false;
  return true;
}

CompareOp SwapCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

std::set<std::string> Expression::ReferencedTables() const {
  std::vector<const ColumnRefExpr*> refs;
  CollectColumnRefs(&refs);
  std::set<std::string> tables;
  for (const ColumnRefExpr* ref : refs) tables.insert(ref->table());
  return tables;
}

bool Expression::ContainsAggregate() const {
  if (kind_ == ExprKind::kAggregateCall) return true;
  // Walk via column-ref collection? Aggregates have no dedicated walker;
  // handle per-kind below.
  switch (kind_) {
    case ExprKind::kComparison: {
      auto* e = static_cast<const ComparisonExpr*>(this);
      return e->left()->ContainsAggregate() || e->right()->ContainsAggregate();
    }
    case ExprKind::kLogical: {
      auto* e = static_cast<const LogicalExpr*>(this);
      for (const ExprPtr& c : e->children()) {
        if (c->ContainsAggregate()) return true;
      }
      return false;
    }
    case ExprKind::kArithmetic: {
      auto* e = static_cast<const ArithmeticExpr*>(this);
      return e->left()->ContainsAggregate() || e->right()->ContainsAggregate();
    }
    case ExprKind::kIsNull: {
      auto* e = static_cast<const IsNullExpr*>(this);
      return e->child()->ContainsAggregate();
    }
    case ExprKind::kCase: {
      auto* e = static_cast<const CaseExpr*>(this);
      for (size_t i = 0; i < e->num_arms(); ++i) {
        if (e->when_at(i)->ContainsAggregate() || e->then_at(i)->ContainsAggregate()) return true;
      }
      return e->else_expr() != nullptr && e->else_expr()->ContainsAggregate();
    }
    case ExprKind::kFunctionCall: {
      auto* e = static_cast<const FunctionCallExpr*>(this);
      for (const ExprPtr& a : e->args()) {
        if (a->ContainsAggregate()) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------- Literal --

Result<Value> LiteralExpr::Eval(const Tuple&) const { return value_; }
Status LiteralExpr::Bind(const Schema&) {
  result_type_ = value_.type();
  return Status::OK();
}
ExprPtr LiteralExpr::Clone() const { return std::make_unique<LiteralExpr>(value_); }
std::string LiteralExpr::ToString() const { return value_.ToString(); }
void LiteralExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>*) const {}
void LiteralExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>*) {}

// -------------------------------------------------------------- ColumnRef --

Result<Value> ColumnRefExpr::Eval(const Tuple& tuple) const {
  if (bound_index_ < 0) {
    return Status::Internal("evaluating unbound column reference " + ToString());
  }
  if (static_cast<size_t>(bound_index_) >= tuple.NumValues()) {
    return Status::Internal("column reference " + ToString() + " out of range");
  }
  return tuple.At(static_cast<size_t>(bound_index_));
}

Status ColumnRefExpr::Bind(const Schema& schema) {
  RELOPT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(table_, name_));
  bound_index_ = static_cast<int>(idx);
  result_type_ = schema.ColumnAt(idx).type;
  // Backfill the qualifier for unqualified references so downstream
  // consumers (selectivity estimation, join-edge detection, EXPLAIN) see the
  // resolved relation.
  if (table_.empty()) table_ = schema.ColumnAt(idx).table;
  return Status::OK();
}

ExprPtr ColumnRefExpr::Clone() const {
  auto c = std::make_unique<ColumnRefExpr>(table_, name_);
  c->bound_index_ = bound_index_;
  c->result_type_ = result_type_;
  return c;
}

std::string ColumnRefExpr::ToString() const {
  return table_.empty() ? name_ : table_ + "." + name_;
}

void ColumnRefExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  out->push_back(this);
}
void ColumnRefExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  out->push_back(this);
}

// ------------------------------------------------------------- Comparison --

Result<Value> ComparisonExpr::Eval(const Tuple& tuple) const {
  RELOPT_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple));
  RELOPT_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  RELOPT_ASSIGN_OR_RETURN(int c, l.Compare(r));
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

Status ComparisonExpr::Bind(const Schema& schema) {
  RELOPT_RETURN_NOT_OK(left_->Bind(schema));
  RELOPT_RETURN_NOT_OK(right_->Bind(schema));
  if (!AreComparable(left_->result_type(), right_->result_type())) {
    return Status::TypeError("cannot compare " + left_->ToString() + " (" +
                             TypeIdToString(left_->result_type()) + ") with " +
                             right_->ToString() + " (" + TypeIdToString(right_->result_type()) +
                             ")");
  }
  result_type_ = TypeId::kBool;
  return Status::OK();
}

ExprPtr ComparisonExpr::Clone() const {
  auto c = std::make_unique<ComparisonExpr>(op_, left_->Clone(), right_->Clone());
  c->result_type_ = result_type_;
  return c;
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpToString(op_) + " " + right_->ToString() + ")";
}

void ComparisonExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}
void ComparisonExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  left_->CollectColumnRefsMutable(out);
  right_->CollectColumnRefsMutable(out);
}

// ---------------------------------------------------------------- Logical --

Result<Value> LogicalExpr::Eval(const Tuple& tuple) const {
  if (op_ == LogicalOp::kNot) {
    RELOPT_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(tuple));
    if (v.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(!v.AsBool());
  }
  // Three-valued AND/OR with short-circuit where sound.
  bool saw_null = false;
  for (const ExprPtr& child : children_) {
    RELOPT_ASSIGN_OR_RETURN(Value v, child->Eval(tuple));
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    bool b = v.AsBool();
    if (op_ == LogicalOp::kAnd && !b) return Value::Bool(false);
    if (op_ == LogicalOp::kOr && b) return Value::Bool(true);
  }
  if (saw_null) return Value::Null(TypeId::kBool);
  return Value::Bool(op_ == LogicalOp::kAnd);
}

Status LogicalExpr::Bind(const Schema& schema) {
  for (ExprPtr& child : children_) {
    RELOPT_RETURN_NOT_OK(child->Bind(schema));
    if (child->result_type() != TypeId::kBool) {
      return Status::TypeError("logical operand " + child->ToString() + " is not boolean");
    }
  }
  result_type_ = TypeId::kBool;
  return Status::OK();
}

ExprPtr LogicalExpr::Clone() const {
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const ExprPtr& c : children_) kids.push_back(c->Clone());
  auto e = std::make_unique<LogicalExpr>(op_, std::move(kids));
  e->result_type_ = result_type_;
  return e;
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "(NOT " + children_[0]->ToString() + ")";
  const char* sep = op_ == LogicalOp::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i]->ToString();
  }
  return out + ")";
}

void LogicalExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  for (const ExprPtr& c : children_) c->CollectColumnRefs(out);
}
void LogicalExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  for (ExprPtr& c : children_) c->CollectColumnRefsMutable(out);
}

// ------------------------------------------------------------- Arithmetic --

Result<Value> ArithmeticExpr::Eval(const Tuple& tuple) const {
  RELOPT_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple));
  RELOPT_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple));
  if (l.is_null() || r.is_null()) return Value::Null(result_type_);
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::TypeError("arithmetic on non-numeric operand in " + ToString());
  }
  bool as_int = l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64;
  if (as_int) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null(TypeId::kInt64);
        return Value::Int(a / b);
      case ArithOp::kMod:
        if (b == 0) return Value::Null(TypeId::kInt64);
        return Value::Int(a % b);
    }
  }
  double a = l.NumericAsDouble(), b = r.NumericAsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(a / b);
    case ArithOp::kMod:
      if (b == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(std::fmod(a, b));
  }
  return Status::Internal("bad arithmetic op");
}

Status ArithmeticExpr::Bind(const Schema& schema) {
  RELOPT_RETURN_NOT_OK(left_->Bind(schema));
  RELOPT_RETURN_NOT_OK(right_->Bind(schema));
  if (!IsNumeric(left_->result_type()) || !IsNumeric(right_->result_type())) {
    return Status::TypeError("arithmetic needs numeric operands in " + ToString());
  }
  result_type_ = (left_->result_type() == TypeId::kInt64 &&
                  right_->result_type() == TypeId::kInt64)
                     ? TypeId::kInt64
                     : TypeId::kDouble;
  return Status::OK();
}

ExprPtr ArithmeticExpr::Clone() const {
  auto e = std::make_unique<ArithmeticExpr>(op_, left_->Clone(), right_->Clone());
  e->result_type_ = result_type_;
  return e;
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpToString(op_) + " " + right_->ToString() + ")";
}

void ArithmeticExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}
void ArithmeticExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  left_->CollectColumnRefsMutable(out);
  right_->CollectColumnRefsMutable(out);
}

// ----------------------------------------------------------------- IsNull --

Result<Value> IsNullExpr::Eval(const Tuple& tuple) const {
  RELOPT_ASSIGN_OR_RETURN(Value v, child_->Eval(tuple));
  bool is_null = v.is_null();
  return Value::Bool(negated_ ? !is_null : is_null);
}

Status IsNullExpr::Bind(const Schema& schema) {
  RELOPT_RETURN_NOT_OK(child_->Bind(schema));
  result_type_ = TypeId::kBool;
  return Status::OK();
}

ExprPtr IsNullExpr::Clone() const {
  auto e = std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  e->result_type_ = result_type_;
  return e;
}

std::string IsNullExpr::ToString() const {
  return "(" + child_->ToString() + (negated_ ? " IS NOT NULL)" : " IS NULL)");
}

void IsNullExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  child_->CollectColumnRefs(out);
}
void IsNullExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  child_->CollectColumnRefsMutable(out);
}

// ---------------------------------------------------------- AggregateCall --

Result<Value> AggregateCallExpr::Eval(const Tuple&) const {
  return Status::Internal("aggregate call " + ToString() +
                          " evaluated directly (binder should have lifted it)");
}

Status AggregateCallExpr::Bind(const Schema& schema) {
  if (arg_) {
    RELOPT_RETURN_NOT_OK(arg_->Bind(schema));
  }
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      result_type_ = TypeId::kInt64;
      break;
    case AggFunc::kAvg:
      result_type_ = TypeId::kDouble;
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      result_type_ = arg_ ? arg_->result_type() : TypeId::kInt64;
      break;
  }
  return Status::OK();
}

ExprPtr AggregateCallExpr::Clone() const {
  auto e = std::make_unique<AggregateCallExpr>(func_, arg_ ? arg_->Clone() : nullptr);
  e->result_type_ = result_type_;
  return e;
}

std::string AggregateCallExpr::ToString() const {
  if (func_ == AggFunc::kCountStar) return "count(*)";
  return std::string(AggFuncToString(func_)) + "(" + (arg_ ? arg_->ToString() : "*") + ")";
}

void AggregateCallExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  if (arg_) arg_->CollectColumnRefs(out);
}
void AggregateCallExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  if (arg_) arg_->CollectColumnRefsMutable(out);
}

// ------------------------------------------------------------------- Case --

namespace {

/// Widens `v` to `target` so every CASE/COALESCE branch yields the unified
/// result type (int64 branches widen to double when any branch is double).
Value CoerceTo(Value v, TypeId target) {
  if (v.is_null()) return Value::Null(target);
  if (target == TypeId::kDouble && v.type() == TypeId::kInt64) {
    return Value::Double(static_cast<double>(v.AsInt()));
  }
  return v;
}

/// Unifies the result types of CASE branches / COALESCE arguments:
/// identical types stay, int64+double widens to double, anything else is a
/// type error. `what` names the construct for the error message.
Result<TypeId> UnifyBranchTypes(const std::vector<TypeId>& types, const std::string& what) {
  TypeId out = types[0];
  for (TypeId t : types) {
    if (t == out) continue;
    if (IsNumeric(t) && IsNumeric(out)) {
      out = TypeId::kDouble;
    } else {
      return Status::TypeError(what + " branches mix incompatible types " + TypeIdToString(out) +
                               " and " + TypeIdToString(t));
    }
  }
  return out;
}

}  // namespace

Result<Value> CaseExpr::Eval(const Tuple& tuple) const {
  for (size_t i = 0; i < whens_.size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(Value cond, whens_[i]->Eval(tuple));
    if (!cond.is_null() && cond.AsBool()) {
      RELOPT_ASSIGN_OR_RETURN(Value v, thens_[i]->Eval(tuple));
      return CoerceTo(std::move(v), result_type_);
    }
  }
  if (else_ == nullptr) return Value::Null(result_type_);
  RELOPT_ASSIGN_OR_RETURN(Value v, else_->Eval(tuple));
  return CoerceTo(std::move(v), result_type_);
}

Status CaseExpr::Bind(const Schema& schema) {
  std::vector<TypeId> branch_types;
  for (size_t i = 0; i < whens_.size(); ++i) {
    RELOPT_RETURN_NOT_OK(whens_[i]->Bind(schema));
    if (whens_[i]->result_type() != TypeId::kBool) {
      return Status::TypeError("CASE WHEN condition " + whens_[i]->ToString() +
                               " is not boolean");
    }
    RELOPT_RETURN_NOT_OK(thens_[i]->Bind(schema));
    branch_types.push_back(thens_[i]->result_type());
  }
  if (else_ != nullptr) {
    RELOPT_RETURN_NOT_OK(else_->Bind(schema));
    branch_types.push_back(else_->result_type());
  }
  RELOPT_ASSIGN_OR_RETURN(result_type_, UnifyBranchTypes(branch_types, "CASE"));
  return Status::OK();
}

ExprPtr CaseExpr::Clone() const {
  std::vector<ExprPtr> whens, thens;
  whens.reserve(whens_.size());
  thens.reserve(thens_.size());
  for (const ExprPtr& w : whens_) whens.push_back(w->Clone());
  for (const ExprPtr& t : thens_) thens.push_back(t->Clone());
  auto e = std::make_unique<CaseExpr>(std::move(whens), std::move(thens),
                                      else_ ? else_->Clone() : nullptr);
  e->result_type_ = result_type_;
  return e;
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (size_t i = 0; i < whens_.size(); ++i) {
    out += " WHEN " + whens_[i]->ToString() + " THEN " + thens_[i]->ToString();
  }
  if (else_ != nullptr) out += " ELSE " + else_->ToString();
  return out + " END";
}

void CaseExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  for (size_t i = 0; i < whens_.size(); ++i) {
    whens_[i]->CollectColumnRefs(out);
    thens_[i]->CollectColumnRefs(out);
  }
  if (else_ != nullptr) else_->CollectColumnRefs(out);
}
void CaseExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  for (size_t i = 0; i < whens_.size(); ++i) {
    whens_[i]->CollectColumnRefsMutable(out);
    thens_[i]->CollectColumnRefsMutable(out);
  }
  if (else_ != nullptr) else_->CollectColumnRefsMutable(out);
}

// ----------------------------------------------------------- FunctionCall --

namespace {

/// |x| computed in uint64 space so INT64_MIN wraps deterministically instead
/// of tripping signed-overflow UB; both the row and batch engines use this.
inline int64_t AbsInt64(int64_t a) {
  uint64_t m = a < 0 ? 0ull - static_cast<uint64_t>(a) : static_cast<uint64_t>(a);
  return static_cast<int64_t>(m);
}

inline std::string AsciiUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

inline std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

Result<Value> FunctionCallExpr::Eval(const Tuple& tuple) const {
  switch (func_) {
    case ScalarFunc::kAbs: {
      RELOPT_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(tuple));
      if (v.is_null()) return Value::Null(result_type_);
      if (!IsNumeric(v.type())) {
        return Status::TypeError("abs on non-numeric operand in " + ToString());
      }
      if (v.type() == TypeId::kInt64) return Value::Int(AbsInt64(v.AsInt()));
      double d = v.NumericAsDouble();
      return Value::Double(d < 0 ? -d : d);
    }
    case ScalarFunc::kLength: {
      RELOPT_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(tuple));
      if (v.is_null()) return Value::Null(TypeId::kInt64);
      if (v.type() != TypeId::kString) {
        return Status::TypeError("length on non-string operand in " + ToString());
      }
      return Value::Int(static_cast<int64_t>(v.AsString().size()));
    }
    case ScalarFunc::kUpper:
    case ScalarFunc::kLower: {
      RELOPT_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(tuple));
      if (v.is_null()) return Value::Null(TypeId::kString);
      if (v.type() != TypeId::kString) {
        return Status::TypeError(std::string(ScalarFuncToString(func_)) +
                                 " on non-string operand in " + ToString());
      }
      return Value::String(func_ == ScalarFunc::kUpper ? AsciiUpper(v.AsString())
                                                       : AsciiLower(v.AsString()));
    }
    case ScalarFunc::kCoalesce: {
      for (const ExprPtr& arg : args_) {
        RELOPT_ASSIGN_OR_RETURN(Value v, arg->Eval(tuple));
        if (!v.is_null()) return CoerceTo(std::move(v), result_type_);
      }
      return Value::Null(result_type_);
    }
    case ScalarFunc::kNullIf: {
      RELOPT_ASSIGN_OR_RETURN(Value a, args_[0]->Eval(tuple));
      RELOPT_ASSIGN_OR_RETURN(Value b, args_[1]->Eval(tuple));
      if (a.is_null() || b.is_null()) return CoerceTo(std::move(a), result_type_);
      RELOPT_ASSIGN_OR_RETURN(int c, a.Compare(b));
      if (c == 0) return Value::Null(result_type_);
      return CoerceTo(std::move(a), result_type_);
    }
  }
  return Status::Internal("bad scalar function");
}

Status FunctionCallExpr::Bind(const Schema& schema) {
  for (ExprPtr& arg : args_) RELOPT_RETURN_NOT_OK(arg->Bind(schema));
  auto arity_error = [this](size_t want) {
    return Status::TypeError(std::string(ScalarFuncToString(func_)) + " takes " +
                             std::to_string(want) + " argument(s), got " +
                             std::to_string(args_.size()));
  };
  switch (func_) {
    case ScalarFunc::kAbs:
      if (args_.size() != 1) return arity_error(1);
      if (!IsNumeric(args_[0]->result_type())) {
        return Status::TypeError("abs needs a numeric argument in " + ToString());
      }
      result_type_ = args_[0]->result_type();
      break;
    case ScalarFunc::kLength:
      if (args_.size() != 1) return arity_error(1);
      if (args_[0]->result_type() != TypeId::kString) {
        return Status::TypeError("length needs a string argument in " + ToString());
      }
      result_type_ = TypeId::kInt64;
      break;
    case ScalarFunc::kUpper:
    case ScalarFunc::kLower:
      if (args_.size() != 1) return arity_error(1);
      if (args_[0]->result_type() != TypeId::kString) {
        return Status::TypeError(std::string(ScalarFuncToString(func_)) +
                                 " needs a string argument in " + ToString());
      }
      result_type_ = TypeId::kString;
      break;
    case ScalarFunc::kCoalesce: {
      if (args_.empty()) return arity_error(1);
      std::vector<TypeId> types;
      for (const ExprPtr& arg : args_) types.push_back(arg->result_type());
      RELOPT_ASSIGN_OR_RETURN(result_type_, UnifyBranchTypes(types, "coalesce"));
      break;
    }
    case ScalarFunc::kNullIf: {
      if (args_.size() != 2) return arity_error(2);
      if (!AreComparable(args_[0]->result_type(), args_[1]->result_type())) {
        return Status::TypeError(std::string("nullif cannot compare ") +
                                 TypeIdToString(args_[0]->result_type()) + " with " +
                                 TypeIdToString(args_[1]->result_type()));
      }
      result_type_ = args_[0]->result_type();
      break;
    }
  }
  return Status::OK();
}

ExprPtr FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->Clone());
  auto e = std::make_unique<FunctionCallExpr>(func_, std::move(args));
  e->result_type_ = result_type_;
  return e;
}

std::string FunctionCallExpr::ToString() const {
  std::string out = std::string(ScalarFuncToString(func_)) + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

void FunctionCallExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  for (const ExprPtr& a : args_) a->CollectColumnRefs(out);
}
void FunctionCallExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) {
  for (ExprPtr& a : args_) a->CollectColumnRefsMutable(out);
}

// ---------------------------------------------------------- ParameterExpr --

Result<Value> ParameterExpr::Eval(const Tuple& tuple) const {
  (void)tuple;
  return Status::InvalidArgument("unbound parameter $" + std::to_string(ordinal_ + 1) +
                                 "; prepare the statement and supply values");
}

Status ParameterExpr::Bind(const Schema& schema) {
  (void)schema;
  return Status::InvalidArgument("statement has unbound parameters; prepare it and supply " +
                                 std::to_string(ordinal_ + 1) + " value(s)");
}

ExprPtr ParameterExpr::Clone() const { return std::make_unique<ParameterExpr>(ordinal_); }

std::string ParameterExpr::ToString() const { return "?"; }

void ParameterExpr::CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const {
  (void)out;
}
void ParameterExpr::CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) { (void)out; }

void CollectParameterSlots(ExprPtr* root, std::vector<ExprPtr*>* out) {
  if (*root == nullptr) return;
  if ((*root)->kind() == ExprKind::kParameter) {
    out->push_back(root);
    return;
  }
  std::vector<ExprPtr*> children;
  (*root)->ChildSlots(&children);
  for (ExprPtr* child : children) CollectParameterSlots(child, out);
}

// ---------------------------------------------------------------- Helpers --

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr MakeColumnRef(std::string table, std::string name) {
  return std::make_unique<ColumnRefExpr>(std::move(table), std::move(name));
}
ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<ComparisonExpr>(op, std::move(left), std::move(right));
}
ExprPtr MakeAnd(ExprPtr left, ExprPtr right) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(left));
  kids.push_back(std::move(right));
  return std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(kids));
}
ExprPtr MakeOr(ExprPtr left, ExprPtr right) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(left));
  kids.push_back(std::move(right));
  return std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(kids));
}
ExprPtr MakeNot(ExprPtr child) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(child));
  return std::make_unique<LogicalExpr>(LogicalOp::kNot, std::move(kids));
}

}  // namespace relopt
