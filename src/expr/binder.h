// Binder: resolves a parsed SELECT against the catalog into a logical plan.
#pragma once

#include "catalog/catalog.h"
#include "parser/ast.h"
#include "plan/logical_plan.h"
#include "util/result.h"

namespace relopt {

/// \brief Turns a SelectStmt into a bound LogicalNode tree:
///
///   Scan/CrossJoin chain -> Filter(WHERE) -> Aggregate -> Filter(HAVING)
///     -> Sort(ORDER BY) -> Project(select list) -> Limit
///
/// Aggregate calls in the select list / HAVING / ORDER BY are lifted into the
/// Aggregate node and replaced by references to its output columns; ORDER BY
/// may reference select-list aliases (substituted by definition).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Consumes the statement's expressions.
  Result<LogicalPtr> BindSelect(SelectStmt* stmt);

 private:
  const Catalog* catalog_;
};

}  // namespace relopt
