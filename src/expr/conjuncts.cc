#include "expr/conjuncts.h"

namespace relopt {

std::vector<ExprPtr> SplitConjuncts(ExprPtr expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind() == ExprKind::kLogical) {
    auto* logical = static_cast<LogicalExpr*>(expr.get());
    if (logical->op() == LogicalOp::kAnd) {
      std::vector<ExprPtr> children = logical->TakeChildren();
      for (ExprPtr& child : children) {
        std::vector<ExprPtr> sub = SplitConjuncts(std::move(child));
        for (ExprPtr& s : sub) out.push_back(std::move(s));
      }
      return out;
    }
  }
  out.push_back(std::move(expr));
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return std::move(conjuncts[0]);
  return std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(conjuncts));
}

std::optional<SargablePred> MatchSargable(const Expression& expr) {
  if (expr.kind() != ExprKind::kComparison) return std::nullopt;
  const auto& cmp = static_cast<const ComparisonExpr&>(expr);
  const Expression* l = cmp.left();
  const Expression* r = cmp.right();
  CompareOp op = cmp.op();
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    std::swap(l, r);
    op = SwapCompareOp(op);
  }
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  const auto* col = static_cast<const ColumnRefExpr*>(l);
  const auto* lit = static_cast<const LiteralExpr*>(r);
  if (lit->value().is_null()) return std::nullopt;  // col op NULL never matches
  return SargablePred{col->table(), col->name(), op, lit->value()};
}

std::optional<EquiJoinPred> MatchEquiJoin(const Expression& expr) {
  if (expr.kind() != ExprKind::kComparison) return std::nullopt;
  const auto& cmp = static_cast<const ComparisonExpr&>(expr);
  if (cmp.op() != CompareOp::kEq) return std::nullopt;
  if (cmp.left()->kind() != ExprKind::kColumnRef ||
      cmp.right()->kind() != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  const auto* l = static_cast<const ColumnRefExpr*>(cmp.left());
  const auto* r = static_cast<const ColumnRefExpr*>(cmp.right());
  if (l->table().empty() || r->table().empty() || l->table() == r->table()) {
    return std::nullopt;
  }
  return EquiJoinPred{l->table(), l->name(), r->table(), r->name()};
}

}  // namespace relopt
