#include "expr/binder.h"

#include <set>

#include "engine/table_functions.h"
#include "expr/fold.h"
#include "util/str_util.h"

namespace relopt {

namespace {

/// Replaces subtrees matching a group-by expression or a lifted aggregate
/// call with column references into the Aggregate node's output schema.
/// Matching is structural-by-rendering (ToString), the classic simple
/// approach for a rewriter without expression interning.
ExprPtr RewriteOverAggregate(ExprPtr expr, const std::vector<std::string>& group_renderings,
                             const Schema& agg_schema, size_t num_group_cols,
                             const std::vector<std::string>& agg_renderings) {
  if (!expr) return expr;
  std::string rendering = expr->ToString();
  for (size_t i = 0; i < group_renderings.size(); ++i) {
    if (rendering == group_renderings[i]) {
      const Column& col = agg_schema.ColumnAt(i);
      return MakeColumnRef(col.table, col.name);
    }
  }
  for (size_t i = 0; i < agg_renderings.size(); ++i) {
    if (rendering == agg_renderings[i]) {
      const Column& col = agg_schema.ColumnAt(num_group_cols + i);
      return MakeColumnRef(col.table, col.name);
    }
  }
  // Recurse into children by kind.
  switch (expr->kind()) {
    case ExprKind::kComparison: {
      auto* e = static_cast<ComparisonExpr*>(expr.get());
      ExprPtr l = RewriteOverAggregate(e->TakeLeft(), group_renderings, agg_schema,
                                       num_group_cols, agg_renderings);
      ExprPtr r = RewriteOverAggregate(e->TakeRight(), group_renderings, agg_schema,
                                       num_group_cols, agg_renderings);
      return MakeComparison(e->op(), std::move(l), std::move(r));
    }
    case ExprKind::kLogical: {
      auto* e = static_cast<LogicalExpr*>(expr.get());
      LogicalOp op = e->op();
      std::vector<ExprPtr> kids = e->TakeChildren();
      for (ExprPtr& k : kids) {
        k = RewriteOverAggregate(std::move(k), group_renderings, agg_schema, num_group_cols,
                                 agg_renderings);
      }
      return std::make_unique<LogicalExpr>(op, std::move(kids));
    }
    case ExprKind::kArithmetic: {
      auto* e = static_cast<ArithmeticExpr*>(expr.get());
      ExprPtr l = RewriteOverAggregate(e->left()->Clone(), group_renderings, agg_schema,
                                       num_group_cols, agg_renderings);
      ExprPtr r = RewriteOverAggregate(e->right()->Clone(), group_renderings, agg_schema,
                                       num_group_cols, agg_renderings);
      return std::make_unique<ArithmeticExpr>(e->op(), std::move(l), std::move(r));
    }
    case ExprKind::kIsNull: {
      auto* e = static_cast<IsNullExpr*>(expr.get());
      ExprPtr c = RewriteOverAggregate(e->child()->Clone(), group_renderings, agg_schema,
                                       num_group_cols, agg_renderings);
      return std::make_unique<IsNullExpr>(std::move(c), e->negated());
    }
    case ExprKind::kCase: {
      auto* e = static_cast<CaseExpr*>(expr.get());
      std::vector<ExprPtr> whens, thens;
      for (size_t i = 0; i < e->num_arms(); ++i) {
        whens.push_back(RewriteOverAggregate(e->when_at(i)->Clone(), group_renderings,
                                             agg_schema, num_group_cols, agg_renderings));
        thens.push_back(RewriteOverAggregate(e->then_at(i)->Clone(), group_renderings,
                                             agg_schema, num_group_cols, agg_renderings));
      }
      ExprPtr else_expr =
          e->else_expr() != nullptr
              ? RewriteOverAggregate(e->else_expr()->Clone(), group_renderings, agg_schema,
                                     num_group_cols, agg_renderings)
              : nullptr;
      return std::make_unique<CaseExpr>(std::move(whens), std::move(thens),
                                        std::move(else_expr));
    }
    case ExprKind::kFunctionCall: {
      auto* e = static_cast<FunctionCallExpr*>(expr.get());
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : e->args()) {
        args.push_back(RewriteOverAggregate(a->Clone(), group_renderings, agg_schema,
                                            num_group_cols, agg_renderings));
      }
      return std::make_unique<FunctionCallExpr>(e->func(), std::move(args));
    }
    default:
      return expr;
  }
}

/// Collects aggregate calls (deduplicated by rendering), in tree order.
void CollectAggCalls(const Expression* expr, std::vector<const AggregateCallExpr*>* out,
                     std::set<std::string>* seen) {
  if (!expr) return;
  if (expr->kind() == ExprKind::kAggregateCall) {
    const auto* agg = static_cast<const AggregateCallExpr*>(expr);
    if (seen->insert(agg->ToString()).second) out->push_back(agg);
    return;  // no nested aggregates
  }
  switch (expr->kind()) {
    case ExprKind::kComparison: {
      const auto* e = static_cast<const ComparisonExpr*>(expr);
      CollectAggCalls(e->left(), out, seen);
      CollectAggCalls(e->right(), out, seen);
      break;
    }
    case ExprKind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      for (const ExprPtr& c : e->children()) CollectAggCalls(c.get(), out, seen);
      break;
    }
    case ExprKind::kArithmetic: {
      const auto* e = static_cast<const ArithmeticExpr*>(expr);
      CollectAggCalls(e->left(), out, seen);
      CollectAggCalls(e->right(), out, seen);
      break;
    }
    case ExprKind::kIsNull: {
      const auto* e = static_cast<const IsNullExpr*>(expr);
      CollectAggCalls(e->child(), out, seen);
      break;
    }
    case ExprKind::kCase: {
      const auto* e = static_cast<const CaseExpr*>(expr);
      for (size_t i = 0; i < e->num_arms(); ++i) {
        CollectAggCalls(e->when_at(i), out, seen);
        CollectAggCalls(e->then_at(i), out, seen);
      }
      CollectAggCalls(e->else_expr(), out, seen);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto* e = static_cast<const FunctionCallExpr*>(expr);
      for (const ExprPtr& a : e->args()) CollectAggCalls(a.get(), out, seen);
      break;
    }
    default:
      break;
  }
}

}  // namespace

Result<LogicalPtr> Binder::BindSelect(SelectStmt* stmt) {
  // ---- FROM: scans joined left-deep by cross joins (optimizer reorders). --
  LogicalPtr plan;
  std::set<std::string> seen_aliases;
  for (const TableRef& ref : stmt->from) {
    if (ref.is_function) {
      // Introspection table functions are snapshot-sized leaves; they cannot
      // participate in joins (the enumerator only handles base tables).
      if (stmt->from.size() > 1) {
        return Status::BindError("table function '" + ref.table_name +
                                 "()' must be the only FROM item");
      }
      if (!IsTableFunction(ref.table_name)) {
        return Status::BindError("unknown table function '" + ref.table_name + "()'");
      }
      std::string alias = ref.EffectiveName();
      RELOPT_ASSIGN_OR_RETURN(Schema schema, TableFunctionSchema(ref.table_name, alias));
      plan = std::make_unique<LogicalTableFunction>(ToLower(ref.table_name), alias,
                                                    std::move(schema));
      continue;
    }
    RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(ref.table_name));
    std::string alias = ref.EffectiveName();
    std::string alias_lower = ToLower(alias);
    if (!seen_aliases.insert(alias_lower).second) {
      return Status::BindError("duplicate table name/alias '" + alias + "' in FROM");
    }
    Schema qualified = table->schema().WithQualifier(alias);
    auto scan = std::make_unique<LogicalScan>(table->name(), alias, std::move(qualified));
    if (!plan) {
      plan = std::move(scan);
    } else {
      plan = std::make_unique<LogicalJoin>(std::move(plan), std::move(scan), nullptr);
    }
  }
  if (!plan) {
    // FROM-less SELECT: one empty row so constant expressions produce output.
    plan = std::make_unique<LogicalValues>(std::vector<Tuple>{Tuple()}, Schema());
  }

  // ---- WHERE --------------------------------------------------------------
  if (stmt->where) {
    ExprPtr pred = FoldConstants(std::move(stmt->where));
    if (pred->ContainsAggregate()) {
      return Status::BindError("aggregate calls are not allowed in WHERE");
    }
    RELOPT_RETURN_NOT_OK(pred->Bind(plan->schema()));
    if (pred->result_type() != TypeId::kBool) {
      return Status::BindError("WHERE predicate is not boolean");
    }
    plan = std::make_unique<LogicalFilter>(std::move(plan), std::move(pred));
  }

  // ---- Aggregate ----------------------------------------------------------
  bool has_agg = !stmt->group_by.empty();
  for (const SelectItem& item : stmt->items) {
    if (item.expr && item.expr->ContainsAggregate()) has_agg = true;
  }
  if (stmt->having) has_agg = true;
  for (const OrderByItem& item : stmt->order_by) {
    if (item.expr->ContainsAggregate()) has_agg = true;
  }

  std::vector<std::string> group_renderings;
  std::vector<std::string> agg_renderings;
  size_t num_group_cols = 0;

  if (has_agg) {
    for (const SelectItem& item : stmt->items) {
      if (item.is_star) {
        return Status::BindError("SELECT * cannot be combined with aggregation");
      }
    }
    // Bind group-by expressions against the input.
    std::vector<ExprPtr> group_exprs;
    Schema agg_schema;
    for (ExprPtr& g : stmt->group_by) {
      ExprPtr expr = FoldConstants(std::move(g));
      // Render BEFORE binding: select/having/order expressions are matched
      // against this rendering while still unbound (binding backfills
      // qualifiers, which would break the textual match).
      group_renderings.push_back(expr->ToString());
      RELOPT_RETURN_NOT_OK(expr->Bind(plan->schema()));
      if (expr->kind() == ExprKind::kColumnRef) {
        const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
        agg_schema.AddColumn(Column(ref->name(), expr->result_type(), ref->table()));
      } else {
        agg_schema.AddColumn(Column(expr->ToString(), expr->result_type(), ""));
      }
      group_exprs.push_back(std::move(expr));
    }
    num_group_cols = group_exprs.size();

    // Collect aggregate calls from every consumer clause.
    std::vector<const AggregateCallExpr*> calls;
    std::set<std::string> seen;
    for (const SelectItem& item : stmt->items) CollectAggCalls(item.expr.get(), &calls, &seen);
    CollectAggCalls(stmt->having.get(), &calls, &seen);
    for (const OrderByItem& item : stmt->order_by) CollectAggCalls(item.expr.get(), &calls, &seen);

    std::vector<AggregateSpec> specs;
    for (const AggregateCallExpr* call : calls) {
      AggregateSpec spec;
      spec.func = call->func();
      spec.arg = call->arg() ? call->arg()->Clone() : nullptr;
      if (spec.arg) {
        spec.arg = FoldConstants(std::move(spec.arg));
        RELOPT_RETURN_NOT_OK(spec.arg->Bind(plan->schema()));
        if ((spec.func == AggFunc::kSum || spec.func == AggFunc::kAvg) &&
            !IsNumeric(spec.arg->result_type())) {
          return Status::BindError(std::string(AggFuncToString(spec.func)) +
                                   " needs a numeric argument");
        }
      }
      spec.out_name = call->ToString();
      agg_renderings.push_back(spec.out_name);
      TypeId out_type;
      switch (spec.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          out_type = TypeId::kInt64;
          break;
        case AggFunc::kAvg:
          out_type = TypeId::kDouble;
          break;
        default:
          out_type = spec.arg ? spec.arg->result_type() : TypeId::kInt64;
      }
      agg_schema.AddColumn(Column(spec.out_name, out_type, ""));
      specs.push_back(std::move(spec));
    }

    plan = std::make_unique<LogicalAggregate>(std::move(plan), std::move(group_exprs),
                                              std::move(specs), std::move(agg_schema));
  }

  auto rewrite_if_agg = [&](ExprPtr e) -> ExprPtr {
    if (!has_agg) return e;
    // `plan` may have a HAVING filter on top by the time ORDER BY is
    // rewritten; locate the aggregate node by walking down.
    const LogicalNode* node = plan.get();
    while (node->kind() != LogicalNodeKind::kAggregate) node = node->child(0);
    const auto* agg_node = static_cast<const LogicalAggregate*>(node);
    return RewriteOverAggregate(std::move(e), group_renderings, agg_node->schema(),
                                num_group_cols, agg_renderings);
  };

  // ---- HAVING ---------------------------------------------------------
  if (stmt->having) {
    if (!has_agg) return Status::BindError("HAVING without aggregation");
    ExprPtr pred = rewrite_if_agg(FoldConstants(std::move(stmt->having)));
    RELOPT_RETURN_NOT_OK(pred->Bind(plan->schema()));
    if (pred->result_type() != TypeId::kBool) {
      return Status::BindError("HAVING predicate is not boolean");
    }
    plan = std::make_unique<LogicalFilter>(std::move(plan), std::move(pred));
  }

  // ---- ORDER BY (below the projection; aliases substituted) -------------
  // With DISTINCT the sort must apply AFTER duplicate elimination, so it is
  // planned above the distinct aggregate further down.
  if (!stmt->order_by.empty() && !stmt->distinct) {
    std::vector<SortKey> keys;
    for (OrderByItem& item : stmt->order_by) {
      ExprPtr expr = std::move(item.expr);
      // Alias reference? Substitute the select item's expression.
      if (expr->kind() == ExprKind::kColumnRef) {
        const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
        if (ref->table().empty()) {
          for (const SelectItem& sel : stmt->items) {
            if (!sel.is_star && !sel.alias.empty() && EqualsIgnoreCase(sel.alias, ref->name())) {
              expr = sel.expr->Clone();
              break;
            }
          }
        }
      }
      expr = rewrite_if_agg(FoldConstants(std::move(expr)));
      RELOPT_RETURN_NOT_OK(expr->Bind(plan->schema()));
      keys.push_back(SortKey{std::move(expr), item.desc});
    }
    plan = std::make_unique<LogicalSort>(std::move(plan), std::move(keys));
  }

  // ---- Projection -------------------------------------------------------
  std::vector<ExprPtr> proj_exprs;
  Schema out_schema;
  for (SelectItem& item : stmt->items) {
    if (item.is_star) {
      for (size_t i = 0; i < plan->schema().NumColumns(); ++i) {
        const Column& col = plan->schema().ColumnAt(i);
        ExprPtr ref = MakeColumnRef(col.table, col.name);
        RELOPT_RETURN_NOT_OK(ref->Bind(plan->schema()));
        proj_exprs.push_back(std::move(ref));
        out_schema.AddColumn(col);
      }
      continue;
    }
    ExprPtr expr = rewrite_if_agg(FoldConstants(std::move(item.expr)));
    RELOPT_RETURN_NOT_OK(expr->Bind(plan->schema()));
    std::string name;
    std::string table;
    if (!item.alias.empty()) {
      name = item.alias;
    } else if (expr->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      name = ref->name();
      table = ref->table();
    } else {
      name = expr->ToString();
    }
    out_schema.AddColumn(Column(name, expr->result_type(), table));
    proj_exprs.push_back(std::move(expr));
  }
  plan = std::make_unique<LogicalProject>(std::move(plan), std::move(proj_exprs),
                                          std::move(out_schema));

  // ---- DISTINCT: group on every output column (no aggregates) -----------
  if (stmt->distinct) {
    Schema distinct_schema = plan->schema();
    std::vector<ExprPtr> group_exprs;
    for (size_t i = 0; i < distinct_schema.NumColumns(); ++i) {
      const Column& col = distinct_schema.ColumnAt(i);
      ExprPtr ref = MakeColumnRef(col.table, col.name);
      RELOPT_RETURN_NOT_OK(ref->Bind(plan->schema()));
      group_exprs.push_back(std::move(ref));
    }
    plan = std::make_unique<LogicalAggregate>(std::move(plan), std::move(group_exprs),
                                              std::vector<AggregateSpec>{},
                                              std::move(distinct_schema));
    // ORDER BY over the distinct output (SQL requires its expressions to be
    // selected columns / aliases when DISTINCT is present).
    if (!stmt->order_by.empty()) {
      std::vector<SortKey> keys;
      for (OrderByItem& item : stmt->order_by) {
        ExprPtr expr = std::move(item.expr);
        Status bound = expr->Bind(plan->schema());
        if (!bound.ok()) {
          return Status::BindError("ORDER BY with DISTINCT must reference selected columns: " +
                                   bound.message());
        }
        keys.push_back(SortKey{std::move(expr), item.desc});
      }
      plan = std::make_unique<LogicalSort>(std::move(plan), std::move(keys));
    }
  }

  // ---- LIMIT --------------------------------------------------------------
  if (stmt->limit.has_value()) {
    if (*stmt->limit < 0) return Status::BindError("LIMIT must be non-negative");
    plan = std::make_unique<LogicalLimit>(std::move(plan), *stmt->limit);
  }
  return plan;
}

}  // namespace relopt
