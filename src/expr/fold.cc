#include "expr/fold.h"

namespace relopt {

namespace {

bool IsLiteral(const Expression& e) { return e.kind() == ExprKind::kLiteral; }

bool IsBoolLiteral(const Expression& e, bool value) {
  if (!IsLiteral(e)) return false;
  const Value& v = static_cast<const LiteralExpr&>(e).value();
  return !v.is_null() && v.type() == TypeId::kBool && v.AsBool() == value;
}

/// Evaluates a literal-only subtree; on any error, returns the original.
ExprPtr TryEval(ExprPtr expr) {
  Result<Value> v = expr->Eval(Tuple());
  if (!v.ok()) return expr;
  return MakeLiteral(v.MoveValue());
}

}  // namespace

ExprPtr FoldConstants(ExprPtr expr) {
  if (!expr) return expr;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kAggregateCall:
      return expr;
    case ExprKind::kComparison: {
      auto* cmp = static_cast<ComparisonExpr*>(expr.get());
      ExprPtr l = FoldConstants(cmp->TakeLeft());
      ExprPtr r = FoldConstants(cmp->TakeRight());
      bool both_const = IsLiteral(*l) && IsLiteral(*r);
      ExprPtr folded = MakeComparison(cmp->op(), std::move(l), std::move(r));
      return both_const ? TryEval(std::move(folded)) : std::move(folded);
    }
    case ExprKind::kArithmetic: {
      auto* ar = static_cast<ArithmeticExpr*>(expr.get());
      ExprPtr l = FoldConstants(ar->left()->Clone());
      ExprPtr r = FoldConstants(ar->right()->Clone());
      bool both_const = IsLiteral(*l) && IsLiteral(*r);
      ExprPtr folded = std::make_unique<ArithmeticExpr>(ar->op(), std::move(l), std::move(r));
      return both_const ? TryEval(std::move(folded)) : std::move(folded);
    }
    case ExprKind::kIsNull: {
      auto* in = static_cast<IsNullExpr*>(expr.get());
      ExprPtr child = FoldConstants(in->child()->Clone());
      bool is_const = IsLiteral(*child);
      ExprPtr folded = std::make_unique<IsNullExpr>(std::move(child), in->negated());
      return is_const ? TryEval(std::move(folded)) : std::move(folded);
    }
    case ExprKind::kLogical: {
      auto* logical = static_cast<LogicalExpr*>(expr.get());
      LogicalOp op = logical->op();
      std::vector<ExprPtr> children = logical->TakeChildren();
      std::vector<ExprPtr> folded_children;
      for (ExprPtr& c : children) folded_children.push_back(FoldConstants(std::move(c)));

      if (op == LogicalOp::kNot) {
        if (IsLiteral(*folded_children[0])) {
          return TryEval(std::make_unique<LogicalExpr>(op, std::move(folded_children)));
        }
        return std::make_unique<LogicalExpr>(op, std::move(folded_children));
      }

      // AND/OR simplification.
      std::vector<ExprPtr> kept;
      for (ExprPtr& c : folded_children) {
        if (op == LogicalOp::kAnd) {
          if (IsBoolLiteral(*c, false)) return MakeLiteral(Value::Bool(false));
          if (IsBoolLiteral(*c, true)) continue;  // neutral
        } else {
          if (IsBoolLiteral(*c, true)) return MakeLiteral(Value::Bool(true));
          if (IsBoolLiteral(*c, false)) continue;  // neutral
        }
        kept.push_back(std::move(c));
      }
      if (kept.empty()) return MakeLiteral(Value::Bool(op == LogicalOp::kAnd));
      if (kept.size() == 1) return std::move(kept[0]);
      return std::make_unique<LogicalExpr>(op, std::move(kept));
    }
    case ExprKind::kCase: {
      // Fold every branch, drop arms whose WHEN folded to false/NULL, and
      // collapse the whole CASE when a leading WHEN folded to true.
      auto* c = static_cast<CaseExpr*>(expr.get());
      std::vector<ExprPtr> whens, thens;
      for (size_t i = 0; i < c->num_arms(); ++i) {
        ExprPtr w = FoldConstants(c->when_at(i)->Clone());
        ExprPtr t = FoldConstants(c->then_at(i)->Clone());
        if (IsLiteral(*w)) {
          const Value& v = static_cast<const LiteralExpr&>(*w).value();
          bool is_true = !v.is_null() && v.type() == TypeId::kBool && v.AsBool();
          if (is_true && whens.empty()) return t;  // first live arm always taken
          if (!is_true) continue;                  // false/NULL arm never taken
        }
        whens.push_back(std::move(w));
        thens.push_back(std::move(t));
      }
      ExprPtr else_expr =
          c->else_expr() != nullptr ? FoldConstants(c->else_expr()->Clone()) : nullptr;
      if (whens.empty()) {
        return else_expr != nullptr ? std::move(else_expr) : MakeLiteral(Value::Null());
      }
      return std::make_unique<CaseExpr>(std::move(whens), std::move(thens),
                                        std::move(else_expr));
    }
    case ExprKind::kFunctionCall: {
      auto* f = static_cast<FunctionCallExpr*>(expr.get());
      std::vector<ExprPtr> args;
      bool all_const = true;
      for (const ExprPtr& a : f->args()) {
        args.push_back(FoldConstants(a->Clone()));
        all_const = all_const && IsLiteral(*args.back());
      }
      ExprPtr folded = std::make_unique<FunctionCallExpr>(f->func(), std::move(args));
      return all_const ? TryEval(std::move(folded)) : std::move(folded);
    }
  }
  return expr;
}

}  // namespace relopt
