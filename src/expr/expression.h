// Expression trees: literals, column references, comparisons, arithmetic,
// boolean logic, IS NULL, and aggregate calls.
//
// Column references carry their source names (qualifier + column) and are
// *bound* against a concrete Schema before evaluation; rebinding against a
// different schema is how the rewriter moves predicates around the plan.
// Evaluation follows SQL three-valued logic.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"
#include "util/result.h"

namespace relopt {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kComparison,
  kLogical,
  kArithmetic,
  kIsNull,
  kAggregateCall,
  kParameter,
  kCase,
  kFunctionCall,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class AggFunc { kCountStar, kCount, kSum, kMin, kMax, kAvg };
enum class ScalarFunc { kAbs, kLength, kUpper, kLower, kCoalesce, kNullIf };

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);
const char* AggFuncToString(AggFunc f);
const char* ScalarFuncToString(ScalarFunc f);

/// Flips a comparison for operand swap: a < b  <=>  b > a.
CompareOp SwapCompareOp(CompareOp op);
/// Logical negation: NOT (a < b)  <=>  a >= b.
CompareOp NegateCompareOp(CompareOp op);

class ColumnRefExpr;

/// \brief Abstract expression node.
class Expression {
 public:
  explicit Expression(ExprKind kind) : kind_(kind) {}
  virtual ~Expression() = default;

  ExprKind kind() const { return kind_; }

  /// Evaluates against one input row. Must be bound first.
  virtual Result<Value> Eval(const Tuple& tuple) const = 0;

  /// Resolves column references against `schema` and computes result types.
  virtual Status Bind(const Schema& schema) = 0;

  /// Deep copy (bound state included).
  virtual std::unique_ptr<Expression> Clone() const = 0;

  /// SQL-ish rendering for EXPLAIN.
  virtual std::string ToString() const = 0;

  /// Result type; valid after a successful Bind.
  TypeId result_type() const { return result_type_; }

  /// Appends every column reference in the tree (pre-order).
  virtual void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const = 0;
  virtual void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) = 0;

  /// Appends the owning slots of this node's direct children. Tree rewrites
  /// that replace whole nodes (prepared-statement parameter substitution)
  /// walk these slots; the default is a leaf with no children.
  virtual void ChildSlots(std::vector<std::unique_ptr<Expression>*>* out) { (void)out; }

  /// Qualifiers (table names/aliases) referenced by this expression.
  std::set<std::string> ReferencedTables() const;

  /// True if the tree contains an aggregate call.
  bool ContainsAggregate() const;

 protected:
  ExprKind kind_;
  TypeId result_type_ = TypeId::kBool;
};

using ExprPtr = std::unique_ptr<Expression>;

/// Constant value.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value) : Expression(ExprKind::kLiteral), value_(std::move(value)) {
    result_type_ = value_.type();
  }

  const Value& value() const { return value_; }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;

 private:
  Value value_;
};

/// Reference to a column, by (qualifier, name); bound to a position.
class ColumnRefExpr : public Expression {
 public:
  ColumnRefExpr(std::string table, std::string name)
      : Expression(ExprKind::kColumnRef), table_(std::move(table)), name_(std::move(name)) {}

  const std::string& table() const { return table_; }
  const std::string& name() const { return name_; }
  /// Rewrites the qualifier (feedback signatures render clones with bare
  /// column names); invalidates nothing — binding is positional.
  void set_table(std::string table) { table_ = std::move(table); }
  int bound_index() const { return bound_index_; }
  bool IsBound() const { return bound_index_ >= 0; }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;

 private:
  std::string table_;
  std::string name_;
  int bound_index_ = -1;
};

/// Binary comparison with SQL NULL semantics (NULL operand -> NULL).
class ComparisonExpr : public Expression {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expression(ExprKind::kComparison),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {
    result_type_ = TypeId::kBool;
  }

  CompareOp op() const { return op_; }
  const Expression* left() const { return left_.get(); }
  const Expression* right() const { return right_.get(); }
  ExprPtr TakeLeft() { return std::move(left_); }
  ExprPtr TakeRight() { return std::move(right_); }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    out->push_back(&left_);
    out->push_back(&right_);
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// AND / OR / NOT with three-valued logic.
class LogicalExpr : public Expression {
 public:
  /// NOT takes one child; AND/OR take two.
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> children)
      : Expression(ExprKind::kLogical), op_(op), children_(std::move(children)) {
    result_type_ = TypeId::kBool;
  }

  LogicalOp op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr> TakeChildren() { return std::move(children_); }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    for (ExprPtr& child : children_) out->push_back(&child);
  }

 private:
  LogicalOp op_;
  std::vector<ExprPtr> children_;
};

/// +, -, *, /, % over numerics (NULL operand -> NULL; x/0 -> NULL, the
/// engine's documented divide-by-zero behaviour).
class ArithmeticExpr : public Expression {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expression(ExprKind::kArithmetic),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const Expression* left() const { return left_.get(); }
  const Expression* right() const { return right_.get(); }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    out->push_back(&left_);
    out->push_back(&right_);
  }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// IS [NOT] NULL.
class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : Expression(ExprKind::kIsNull), child_(std::move(child)), negated_(negated) {
    result_type_ = TypeId::kBool;
  }

  const Expression* child() const { return child_.get(); }
  bool negated() const { return negated_; }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override { out->push_back(&child_); }

 private:
  ExprPtr child_;
  bool negated_;
};

/// Aggregate invocation (COUNT/SUM/MIN/MAX/AVG). Never evaluated directly:
/// the binder lifts these into an Aggregate plan node and replaces them with
/// column references; Eval on a surviving node is an Internal error.
class AggregateCallExpr : public Expression {
 public:
  AggregateCallExpr(AggFunc func, ExprPtr arg)
      : Expression(ExprKind::kAggregateCall), func_(func), arg_(std::move(arg)) {}

  AggFunc func() const { return func_; }
  const Expression* arg() const { return arg_.get(); }  // null for COUNT(*)
  ExprPtr TakeArg() { return std::move(arg_); }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    if (arg_ != nullptr) out->push_back(&arg_);
  }

 private:
  AggFunc func_;
  ExprPtr arg_;
};

/// Positional `?` placeholder in a prepared statement (0-based ordinal in
/// source order). Never survives to binding: Session::Prepare records the
/// template and parameter binding replaces every ParameterExpr with a
/// LiteralExpr before the binder runs, so Bind/Eval on one is an error (an
/// un-prepared statement containing `?` fails cleanly at bind time).
class ParameterExpr : public Expression {
 public:
  explicit ParameterExpr(size_t ordinal)
      : Expression(ExprKind::kParameter), ordinal_(ordinal) {}

  size_t ordinal() const { return ordinal_; }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;

 private:
  size_t ordinal_;
};

/// Searched CASE: WHEN <bool> THEN <value> ... [ELSE <value>] END. The parser
/// lowers simple CASE (`CASE x WHEN v THEN ...`) into this form by rewriting
/// each arm to `x = v`, so the rest of the engine sees one shape only. A
/// missing ELSE yields NULL. Arms are evaluated in order; the first WHEN that
/// is TRUE (not NULL) selects its THEN.
class CaseExpr : public Expression {
 public:
  CaseExpr(std::vector<ExprPtr> whens, std::vector<ExprPtr> thens, ExprPtr else_expr)
      : Expression(ExprKind::kCase),
        whens_(std::move(whens)),
        thens_(std::move(thens)),
        else_(std::move(else_expr)) {}

  size_t num_arms() const { return whens_.size(); }
  const Expression* when_at(size_t i) const { return whens_[i].get(); }
  const Expression* then_at(size_t i) const { return thens_[i].get(); }
  const Expression* else_expr() const { return else_.get(); }  // may be null

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    for (ExprPtr& w : whens_) out->push_back(&w);
    for (ExprPtr& t : thens_) out->push_back(&t);
    if (else_ != nullptr) out->push_back(&else_);
  }

 private:
  std::vector<ExprPtr> whens_;
  std::vector<ExprPtr> thens_;
  ExprPtr else_;
};

/// Scalar function call (abs, length, upper, lower, coalesce, nullif).
/// Arity and argument types are checked at Bind time; every function maps
/// NULL inputs per SQL (NULL in -> NULL out, except COALESCE which skips
/// NULLs and NULLIF which compares only non-NULL operands).
class FunctionCallExpr : public Expression {
 public:
  FunctionCallExpr(ScalarFunc func, std::vector<ExprPtr> args)
      : Expression(ExprKind::kFunctionCall), func_(func), args_(std::move(args)) {}

  ScalarFunc func() const { return func_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  Result<Value> Eval(const Tuple& tuple) const override;
  Status Bind(const Schema& schema) override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>* out) const override;
  void CollectColumnRefsMutable(std::vector<ColumnRefExpr*>* out) override;
  void ChildSlots(std::vector<ExprPtr*>* out) override {
    for (ExprPtr& a : args_) out->push_back(&a);
  }

 private:
  ScalarFunc func_;
  std::vector<ExprPtr> args_;
};

/// Looks up a scalar function by its lower-case SQL name; false if unknown.
bool LookupScalarFunc(const std::string& name, ScalarFunc* out);

/// Appends the owning slots of every ParameterExpr under `*root` (including
/// `root` itself), in source order. The slots stay valid while the tree is
/// alive; assigning a new expression through a slot replaces the parameter.
void CollectParameterSlots(ExprPtr* root, std::vector<ExprPtr*>* out);

/// Convenience constructors.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string name);
ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeAnd(ExprPtr left, ExprPtr right);
ExprPtr MakeOr(ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr child);

}  // namespace relopt
