// Batch (vectorized) expression evaluation over TupleBatch selection vectors.
#pragma once

#include <vector>

#include "expr/expression.h"
#include "types/tuple_batch.h"
#include "util/result.h"

namespace relopt {

/// \brief Splits a bound predicate into its top-level AND conjuncts,
/// non-owning (the predicate keeps ownership; pointers stay valid as long as
/// it lives). A non-AND predicate is a single conjunct; nullptr yields none.
///
/// Conjunct-wise filtering is equivalent to evaluating the whole AND per row:
/// under SQL three-valued logic a row passes the AND iff every conjunct
/// evaluates to true (any false OR NULL conjunct makes the AND false-or-NULL,
/// which a filter rejects either way).
std::vector<const Expression*> CollectConjuncts(const Expression* pred);

/// \brief Filters `batch` in place: after the call its selection vector keeps
/// only the rows for which every conjunct evaluates to true.
///
/// Evaluates one conjunct at a time over the surviving selection, compacting
/// it in place and short-circuiting once it is empty — rows rejected by an
/// earlier conjunct never evaluate the later ones (same work-skipping as the
/// row-at-a-time AND evaluator, amortized over the batch).
Status FilterBatch(const std::vector<const Expression*>& conjuncts, TupleBatch* batch);

/// \brief Projects the selected rows of `in` through `exprs` into `out`
/// (cleared first). Output rows reuse `out`'s tuple storage; `out` must have
/// capacity >= in.NumSelected().
Status ProjectBatch(const std::vector<ExprPtr>& exprs, const TupleBatch& in, TupleBatch* out);

/// \brief Computes the order-preserving encoded group key (see
/// types/key_codec.h) of every selected row of `batch` into
/// `keys[0..NumSelected())`. The multi-column kernel behind hash
/// aggregation's batch ingest: bare bound column references encode straight
/// from tuple storage (no virtual Eval, no Value copy); other expressions
/// evaluate per row. Key strings are reused across calls (clear-and-append),
/// so a steady-state ingest loop allocates nothing per batch.
///
/// Zero group expressions (global aggregate) yield empty keys.
Status ComputeGroupKeys(const std::vector<const Expression*>& exprs, const TupleBatch& batch,
                        std::vector<std::string>* keys);

}  // namespace relopt
