// Batch (vectorized) expression evaluation over TupleBatch selection vectors.
//
// The engine compiles a bound expression tree once per executor into a
// CompiledExpr kernel tree that evaluates column-at-a-time into typed
// ColumnVec vectors: int64/double/bool payloads live in flat arrays with a
// null byte per row; strings (and adaptively-detected mixed columns) are
// boxed Values. AND/OR/CASE/COALESCE evaluate lazily over shrinking row
// subsets (short-circuit selection compaction), so a row rejected by an
// earlier branch never pays for a later one — the batched equivalent of the
// row evaluator's short circuits, with identical SQL three-valued-logic and
// error semantics.
//
// Any expression kind without a kernel (aggregate calls, unbound parameters)
// routes through a per-row fallback node that counts every row it evaluates
// into the owning operator's `fallback_rows` stat and the engine-wide
// `relopt.exec.batch_fallback_rows` counter, so row-loop usage under batch
// drive is observable in EXPLAIN ANALYZE and relopt_metrics().
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "types/tuple_batch.h"
#include "util/result.h"

namespace relopt {

/// \brief Splits a bound predicate into its top-level AND conjuncts,
/// non-owning (the predicate keeps ownership; pointers stay valid as long as
/// it lives). A non-AND predicate is a single conjunct; nullptr yields none.
///
/// Conjunct-wise filtering is equivalent to evaluating the whole AND per row:
/// under SQL three-valued logic a row passes the AND iff every conjunct
/// evaluates to true (any false OR NULL conjunct makes the AND false-or-NULL,
/// which a filter rejects either way).
std::vector<const Expression*> CollectConjuncts(const Expression* pred);

/// \brief A typed column of evaluation results, one entry per requested row.
///
/// Representation: `type` fixes the payload lane — kInt64/kBool in `i64`
/// (bools are 0/1), kDouble in `f64`, kString (or adaptively boxed columns)
/// in `vals`. `nulls[k] != 0` marks NULL. `is_const` broadcasts one physical
/// entry to every logical row (literals). Buffers are reused across batches.
struct ColumnVec {
  TypeId type = TypeId::kInt64;
  bool is_const = false;
  bool boxed = false;
  size_t n = 0;
  std::vector<uint8_t> nulls;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<Value> vals;

  size_t phys(size_t k) const { return is_const ? 0 : k; }
  bool NullAt(size_t k) const { return nulls[phys(k)] != 0; }
  int64_t I64At(size_t k) const { return i64[phys(k)]; }
  double F64At(size_t k) const { return f64[phys(k)]; }
  /// Numeric payload widened to double regardless of lane.
  double NumAt(size_t k) const {
    return type == TypeId::kDouble ? f64[phys(k)] : static_cast<double>(i64[phys(k)]);
  }
  const Value& BoxedAt(size_t k) const { return vals[phys(k)]; }

  /// Materializes row `k` as a Value (scatter/output path).
  Value GetValue(size_t k) const;

  /// Clears to `n` rows of the given shape, all non-null.
  void Reset(TypeId t, bool boxed_storage, size_t num_rows);
};

/// \brief One compiled kernel node. Eval fills `out` with one entry per row
/// of `rows` (physical indices into the batch's row storage — a selection
/// vector or a lazily-compacted subset of one).
///
/// A node instance belongs to one executor and is driven by one thread;
/// scratch vectors inside nodes are reused across batches.
class CompiledExpr {
 public:
  explicit CompiledExpr(TypeId type) : type_(type) {}
  virtual ~CompiledExpr() = default;

  TypeId type() const { return type_; }

  virtual Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
                      uint64_t* fallback_rows, ColumnVec* out) = 0;

 protected:
  TypeId type_;
};

using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

/// Compiles a bound expression into a kernel tree. Unsupported kinds become
/// per-row fallback nodes (observable, never wrong). Never fails.
CompiledExprPtr CompileExpr(const Expression* expr);

/// \brief Compiled filter predicate: conjunct-wise selection compaction with
/// fused kernels for the hot shapes (`column <op> literal` and
/// `column <op> column` compare straight from tuple storage, no ColumnVec
/// materialization); all other conjuncts run their compiled kernel tree over
/// the surviving selection. Later conjuncts only see survivors.
class BatchPredicate {
 public:
  /// `pred` must be bound (or null = always true) and outlive this object.
  explicit BatchPredicate(const Expression* pred);

  /// Compacts `batch`'s selection to the rows where the predicate is TRUE.
  /// Fallback-evaluated rows are counted into `*fallback_rows` (if non-null).
  Status Filter(TupleBatch* batch, uint64_t* fallback_rows);

 private:
  struct Conjunct {
    const Expression* source;  ///< for fused-path error diagnostics
    // Fused `column <op> literal`.
    bool fused_col_lit = false;
    int lcol = -1;
    CompareOp op = CompareOp::kEq;
    const Value* literal = nullptr;
    // Fused `column <op> column`.
    bool fused_col_col = false;
    int rcol = -1;
    // General path.
    CompiledExprPtr tree;
  };
  std::vector<Conjunct> conjuncts_;
  ColumnVec scratch_;
};

/// \brief Compiled projection: bare bound column references copy straight
/// from storage; every other expression evaluates column-at-a-time through
/// its kernel tree, then scatters into the output batch's reusable tuples.
class BatchProjector {
 public:
  /// `exprs` must be bound and outlive this object.
  explicit BatchProjector(const std::vector<ExprPtr>* exprs);

  /// Projects the selected rows of `in` into `out` (cleared first). `out`
  /// must have capacity >= in.NumSelected().
  Status Project(const TupleBatch& in, TupleBatch* out, uint64_t* fallback_rows);

 private:
  const std::vector<ExprPtr>* exprs_;
  std::vector<int> direct_col_;  ///< bound column index or -1 per expression
  std::vector<CompiledExprPtr> compiled_;
  std::vector<ColumnVec> vecs_;
};

/// \brief Compiled sort-key encoder shared by the row and batch paths of
/// external sort: per key, the order-preserving encoding (types/key_codec.h)
/// of the key expression's value, with descending keys byte-inverted.
class SortKeyEncoder {
 public:
  SortKeyEncoder(std::vector<const Expression*> exprs, std::vector<bool> desc);

  /// Encodes the full sort key of every selected row of `batch` into
  /// `keys[0..NumSelected())` (resized; strings reused across calls).
  Status EncodeBatch(const TupleBatch& batch, std::vector<std::string>* keys,
                     uint64_t* fallback_rows);

  /// Row-mode path: encodes one tuple's key (clears `*key` first).
  Status EncodeRow(const Tuple& t, std::string* key) const;

 private:
  void AppendPart(const Value& v, bool desc, std::string* key) const;

  std::vector<const Expression*> exprs_;
  std::vector<bool> desc_;
  std::vector<int> direct_col_;
  std::vector<CompiledExprPtr> compiled_;
  std::vector<ColumnVec> vecs_;
};

/// \brief Batch join-key encoding: computes the composite encoded key of
/// every selected row over fixed key columns in one tight loop. Rows with a
/// NULL key column get nullopt (NULL never matches an equi join). Matches
/// JoinKeyOf (exec/hash_join.h) byte for byte; key strings are reused.
Status ComputeJoinKeys(const TupleBatch& batch, const std::vector<size_t>& key_cols,
                       std::vector<std::optional<std::string>>* keys);

/// \brief Compiled group-key kernel behind hash aggregation and DISTINCT:
/// encodes the composite group key of every selected row, and retains the
/// evaluated key columns so the aggregation's map-miss path can materialize
/// group key Values without re-evaluating the expressions.
class GroupKeyComputer {
 public:
  /// `exprs` must be bound and outlive this object.
  explicit GroupKeyComputer(const std::vector<const Expression*>* exprs);

  /// Encodes keys for all selected rows of `batch` into
  /// `keys[0..NumSelected())`. Zero group expressions yield empty keys.
  Status Compute(const TupleBatch& batch, std::vector<std::string>* keys,
                 uint64_t* fallback_rows);

  /// Value of group expression `i` for selected row `k` of the last Compute
  /// batch (which must still be alive).
  Value KeyValue(size_t i, size_t k) const;

 private:
  const std::vector<const Expression*>* exprs_;
  std::vector<int> direct_col_;
  std::vector<CompiledExprPtr> compiled_;
  std::vector<ColumnVec> vecs_;
  const TupleBatch* last_batch_ = nullptr;
};

}  // namespace relopt
