// Conjunct utilities and predicate pattern-matching used by the optimizer.
#pragma once

#include <optional>
#include <vector>

#include "expr/expression.h"

namespace relopt {

/// Flattens nested ANDs into a list of conjuncts (consumes `expr`).
std::vector<ExprPtr> SplitConjuncts(ExprPtr expr);

/// ANDs conjuncts back together; returns nullptr for an empty list.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// A sargable single-table predicate: `column <op> constant`.
struct SargablePred {
  std::string table;    ///< qualifier of the column
  std::string column;   ///< column name
  CompareOp op;
  Value constant;
};

/// Matches `col op literal` or `literal op col` (op swapped accordingly).
/// The column side must be a bare column reference and the other side a
/// literal. Returns nullopt otherwise.
std::optional<SargablePred> MatchSargable(const Expression& expr);

/// An equi-join predicate: `left_col = right_col` across two different
/// qualifiers.
struct EquiJoinPred {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// Matches `t1.a = t2.b` with distinct qualifiers.
std::optional<EquiJoinPred> MatchEquiJoin(const Expression& expr);

}  // namespace relopt
