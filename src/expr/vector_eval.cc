#include "expr/vector_eval.h"

#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>

#include "types/key_codec.h"
#include "util/metrics.h"

namespace relopt {

namespace {

void CollectConjunctsInto(const Expression* pred, std::vector<const Expression*>* out) {
  if (pred == nullptr) return;
  if (pred->kind() == ExprKind::kLogical) {
    const auto* logical = static_cast<const LogicalExpr*>(pred);
    if (logical->op() == LogicalOp::kAnd) {
      for (const ExprPtr& child : logical->children()) {
        CollectConjunctsInto(child.get(), out);
      }
      return;
    }
  }
  out->push_back(pred);
}

bool ApplyOp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // eq/ne are symmetric
  }
}

/// Same widening as the row evaluator's CoerceTo (expression.cc): NULL takes
/// the target type, int64 widens to double, everything else passes through.
Value CoerceValue(Value v, TypeId target) {
  if (v.is_null()) return Value::Null(target);
  if (target == TypeId::kDouble && v.type() == TypeId::kInt64) {
    return Value::Double(static_cast<double>(v.AsInt()));
  }
  return v;
}

/// |x| in uint64 space so INT64_MIN wraps deterministically; must stay in
/// lockstep with the row evaluator's AbsInt64 (expression.cc).
inline int64_t WrapAbsInt64(int64_t a) {
  uint64_t m = a < 0 ? 0ull - static_cast<uint64_t>(a) : static_cast<uint64_t>(a);
  return static_cast<int64_t>(m);
}

/// Reads entry `k` as a boolean; `*is_null` set accordingly. Works for both
/// i64-lane bool vectors and boxed (fallback-produced) ones.
inline void ReadBool(const ColumnVec& v, size_t k, bool* is_null, bool* b) {
  if (v.NullAt(k)) {
    *is_null = true;
    return;
  }
  *is_null = false;
  *b = v.boxed ? v.BoxedAt(k).AsBool() : v.I64At(k) != 0;
}

/// Borrow entry `k` as a Value without copying boxed payloads: boxed columns
/// hand out a reference, primitive lanes materialize into `*storage`.
inline const Value& BorrowValue(const ColumnVec& v, size_t k, Value* storage) {
  if (v.boxed && !v.NullAt(k)) return v.BoxedAt(k);
  *storage = v.GetValue(k);
  return *storage;
}

/// Converts a primitive vector to boxed storage in place, preserving the
/// entries written so far. Only the adaptive mixed-type path needs this.
void BoxColumn(ColumnVec* v) {
  if (v->boxed) return;
  size_t phys_n = v->nulls.size();
  std::vector<Value> vals(phys_n);
  for (size_t k = 0; k < phys_n; ++k) {
    if (v->nulls[k] == 0) {
      switch (v->type) {
        case TypeId::kBool:
          vals[k] = Value::Bool(v->i64[k] != 0);
          break;
        case TypeId::kInt64:
          vals[k] = Value::Int(v->i64[k]);
          break;
        case TypeId::kDouble:
          vals[k] = Value::Double(v->f64[k]);
          break;
        default:
          break;
      }
    }
  }
  v->vals = std::move(vals);
  v->boxed = true;
}

/// Stores an already-coerced value into entry `p`; boxes the column when the
/// runtime type cannot live in the primitive lane (adaptive mixed columns).
void StoreValue(ColumnVec* out, size_t p, Value v) {
  if (v.is_null()) {
    out->nulls[p] = 1;
    return;
  }
  out->nulls[p] = 0;
  if (!out->boxed) {
    if (out->type == TypeId::kInt64 && v.type() == TypeId::kInt64) {
      out->i64[p] = v.AsInt();
      return;
    }
    if (out->type == TypeId::kDouble && v.type() == TypeId::kDouble) {
      out->f64[p] = v.AsDouble();
      return;
    }
    if (out->type == TypeId::kBool && v.type() == TypeId::kBool) {
      out->i64[p] = v.AsBool() ? 1 : 0;
      return;
    }
    BoxColumn(out);
  }
  out->vals[p] = std::move(v);
}

// ------------------------------------------------------------ kernel nodes --

/// Bound column gather. Primitive columns fill typed lanes; a runtime value
/// whose type disagrees with the declared column type (possible only with
/// type-loose storage) flips the node into boxed mode permanently so
/// downstream kernels see the exact runtime Values the row engine would.
class ColRefNode final : public CompiledExpr {
 public:
  explicit ColRefNode(const ColumnRefExpr* src)
      : CompiledExpr(src->result_type()), src_(src), col_(src->bound_index()) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows, uint64_t*,
              ColumnVec* out) override {
    size_t n = rows.size();
    bool primitive = !boxed_mode_ && type_ != TypeId::kString;
    out->Reset(type_, !primitive, n);
    for (size_t k = 0; k < n; ++k) {
      const Tuple& t = batch.RowAt(rows[k]);
      if (static_cast<size_t>(col_) >= t.NumValues()) {
        return Status::Internal("column reference " + src_->ToString() + " out of range");
      }
      const Value& v = t.At(static_cast<size_t>(col_));
      if (v.is_null()) {
        out->nulls[k] = 1;
        continue;
      }
      if (!primitive) {
        out->vals[k] = v;
      } else if (type_ == TypeId::kInt64 && v.type() == TypeId::kInt64) {
        out->i64[k] = v.AsInt();
      } else if (type_ == TypeId::kDouble && v.type() == TypeId::kDouble) {
        out->f64[k] = v.AsDouble();
      } else if (type_ == TypeId::kBool && v.type() == TypeId::kBool) {
        out->i64[k] = v.AsBool() ? 1 : 0;
      } else {
        boxed_mode_ = true;  // mixed storage: redo this batch boxed
        return Eval(batch, rows, nullptr, out);
      }
    }
    return Status::OK();
  }

 private:
  const ColumnRefExpr* src_;
  int col_;
  bool boxed_mode_ = false;
};

class LitNode final : public CompiledExpr {
 public:
  explicit LitNode(const Value& v) : CompiledExpr(v.type()) {
    cvec_.Reset(v.type(), v.type() == TypeId::kString, 1);
    StoreValue(&cvec_, 0, v);
    cvec_.is_const = true;
  }

  Status Eval(const TupleBatch&, const std::vector<uint32_t>& rows, uint64_t*,
              ColumnVec* out) override {
    *out = cvec_;
    out->n = rows.size();
    return Status::OK();
  }

 private:
  ColumnVec cvec_;
};

class CmpNode final : public CompiledExpr {
 public:
  CmpNode(CompareOp op, CompiledExprPtr l, CompiledExprPtr r)
      : CompiledExpr(TypeId::kBool), op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(l_->Eval(batch, rows, fallback_rows, &lv_));
    RELOPT_RETURN_NOT_OK(r_->Eval(batch, rows, fallback_rows, &rv_));
    size_t n = rows.size();
    out->Reset(TypeId::kBool, false, n);
    if (lv_.boxed || rv_.boxed) {
      Value ls, rs;
      for (size_t k = 0; k < n; ++k) {
        if (lv_.NullAt(k) || rv_.NullAt(k)) {
          out->nulls[k] = 1;
          continue;
        }
        const Value& a = BorrowValue(lv_, k, &ls);
        const Value& b = BorrowValue(rv_, k, &rs);
        RELOPT_ASSIGN_OR_RETURN(int c, a.Compare(b));
        out->i64[k] = ApplyOp(op_, c) ? 1 : 0;
      }
      return Status::OK();
    }
    if (lv_.type == TypeId::kDouble || rv_.type == TypeId::kDouble) {
      for (size_t k = 0; k < n; ++k) {
        if (lv_.NullAt(k) || rv_.NullAt(k)) {
          out->nulls[k] = 1;
          continue;
        }
        double a = lv_.NumAt(k), b = rv_.NumAt(k);
        out->i64[k] = ApplyOp(op_, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0;
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (lv_.NullAt(k) || rv_.NullAt(k)) {
          out->nulls[k] = 1;
          continue;
        }
        int64_t a = lv_.I64At(k), b = rv_.I64At(k);
        out->i64[k] = ApplyOp(op_, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0;
      }
    }
    return Status::OK();
  }

 private:
  CompareOp op_;
  CompiledExprPtr l_, r_;
  ColumnVec lv_, rv_;
};

class ArithNode final : public CompiledExpr {
 public:
  ArithNode(const ArithmeticExpr* src, CompiledExprPtr l, CompiledExprPtr r)
      : CompiledExpr(src->result_type()),
        src_(src),
        op_(src->op()),
        l_(std::move(l)),
        r_(std::move(r)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(l_->Eval(batch, rows, fallback_rows, &lv_));
    RELOPT_RETURN_NOT_OK(r_->Eval(batch, rows, fallback_rows, &rv_));
    size_t n = rows.size();
    if (lv_.boxed || rv_.boxed) return EvalBoxed(n, out);
    if (lv_.type == TypeId::kInt64 && rv_.type == TypeId::kInt64) {
      out->Reset(TypeId::kInt64, false, n);
      for (size_t k = 0; k < n; ++k) {
        if (lv_.NullAt(k) || rv_.NullAt(k)) {
          out->nulls[k] = 1;
          continue;
        }
        int64_t a = lv_.I64At(k), b = rv_.I64At(k);
        switch (op_) {
          case ArithOp::kAdd:
            out->i64[k] = a + b;
            break;
          case ArithOp::kSub:
            out->i64[k] = a - b;
            break;
          case ArithOp::kMul:
            out->i64[k] = a * b;
            break;
          case ArithOp::kDiv:
            if (b == 0) {
              out->nulls[k] = 1;
            } else {
              out->i64[k] = a / b;
            }
            break;
          case ArithOp::kMod:
            if (b == 0) {
              out->nulls[k] = 1;
            } else {
              out->i64[k] = a % b;
            }
            break;
        }
      }
      return Status::OK();
    }
    out->Reset(TypeId::kDouble, false, n);
    for (size_t k = 0; k < n; ++k) {
      if (lv_.NullAt(k) || rv_.NullAt(k)) {
        out->nulls[k] = 1;
        continue;
      }
      double a = lv_.NumAt(k), b = rv_.NumAt(k);
      switch (op_) {
        case ArithOp::kAdd:
          out->f64[k] = a + b;
          break;
        case ArithOp::kSub:
          out->f64[k] = a - b;
          break;
        case ArithOp::kMul:
          out->f64[k] = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out->nulls[k] = 1;
          } else {
            out->f64[k] = a / b;
          }
          break;
        case ArithOp::kMod:
          if (b == 0) {
            out->nulls[k] = 1;
          } else {
            out->f64[k] = std::fmod(a, b);
          }
          break;
      }
    }
    return Status::OK();
  }

 private:
  /// Mixed-type inputs: replay the row evaluator's value-typed arithmetic,
  /// including its runtime non-numeric type error, verbatim.
  Status EvalBoxed(size_t n, ColumnVec* out) {
    out->Reset(type_, true, n);
    Value ls, rs;
    for (size_t k = 0; k < n; ++k) {
      if (lv_.NullAt(k) || rv_.NullAt(k)) {
        out->nulls[k] = 1;
        continue;
      }
      const Value& l = BorrowValue(lv_, k, &ls);
      const Value& r = BorrowValue(rv_, k, &rs);
      if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
        return Status::TypeError("arithmetic on non-numeric operand in " + src_->ToString());
      }
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (op_) {
          case ArithOp::kAdd:
            out->vals[k] = Value::Int(a + b);
            break;
          case ArithOp::kSub:
            out->vals[k] = Value::Int(a - b);
            break;
          case ArithOp::kMul:
            out->vals[k] = Value::Int(a * b);
            break;
          case ArithOp::kDiv:
            if (b == 0) {
              out->nulls[k] = 1;
            } else {
              out->vals[k] = Value::Int(a / b);
            }
            break;
          case ArithOp::kMod:
            if (b == 0) {
              out->nulls[k] = 1;
            } else {
              out->vals[k] = Value::Int(a % b);
            }
            break;
        }
        continue;
      }
      double a = l.NumericAsDouble(), b = r.NumericAsDouble();
      switch (op_) {
        case ArithOp::kAdd:
          out->vals[k] = Value::Double(a + b);
          break;
        case ArithOp::kSub:
          out->vals[k] = Value::Double(a - b);
          break;
        case ArithOp::kMul:
          out->vals[k] = Value::Double(a * b);
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out->nulls[k] = 1;
          } else {
            out->vals[k] = Value::Double(a / b);
          }
          break;
        case ArithOp::kMod:
          if (b == 0) {
            out->nulls[k] = 1;
          } else {
            out->vals[k] = Value::Double(std::fmod(a, b));
          }
          break;
      }
    }
    return Status::OK();
  }

  const ArithmeticExpr* src_;
  ArithOp op_;
  CompiledExprPtr l_, r_;
  ColumnVec lv_, rv_;
};

class NotNode final : public CompiledExpr {
 public:
  explicit NotNode(CompiledExprPtr child)
      : CompiledExpr(TypeId::kBool), child_(std::move(child)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(child_->Eval(batch, rows, fallback_rows, &cv_));
    size_t n = rows.size();
    out->Reset(TypeId::kBool, false, n);
    for (size_t k = 0; k < n; ++k) {
      bool is_null, b;
      ReadBool(cv_, k, &is_null, &b);
      if (is_null) {
        out->nulls[k] = 1;
      } else {
        out->i64[k] = b ? 0 : 1;
      }
    }
    return Status::OK();
  }

 private:
  CompiledExprPtr child_;
  ColumnVec cv_;
};

/// Lazy three-valued AND/OR: each child only evaluates over the rows the
/// earlier children left undecided (AND: not yet false; OR: not yet true) —
/// the selection-compaction analogue of the row evaluator's short circuits,
/// including its "NULL stays pending until a deciding value appears" rule.
class AndOrNode final : public CompiledExpr {
 public:
  AndOrNode(LogicalOp op, std::vector<CompiledExprPtr> children)
      : CompiledExpr(TypeId::kBool),
        is_and_(op == LogicalOp::kAnd),
        children_(std::move(children)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    size_t n = rows.size();
    out->Reset(TypeId::kBool, false, n);
    int64_t neutral = is_and_ ? 1 : 0;
    for (size_t k = 0; k < n; ++k) out->i64[k] = neutral;
    active_.resize(n);
    for (size_t k = 0; k < n; ++k) active_[k] = static_cast<uint32_t>(k);
    for (const CompiledExprPtr& child : children_) {
      if (active_.empty()) break;
      subrows_.clear();
      subrows_.reserve(active_.size());
      for (uint32_t p : active_) subrows_.push_back(rows[p]);
      RELOPT_RETURN_NOT_OK(child->Eval(batch, subrows_, fallback_rows, &cv_));
      next_active_.clear();
      for (size_t j = 0; j < active_.size(); ++j) {
        uint32_t p = active_[j];
        bool is_null, b;
        ReadBool(cv_, j, &is_null, &b);
        if (is_null) {
          out->nulls[p] = 1;  // pending NULL: a later deciding value overrides
          next_active_.push_back(p);
          continue;
        }
        if (is_and_ ? !b : b) {
          out->i64[p] = is_and_ ? 0 : 1;  // decided: AND -> false / OR -> true
          out->nulls[p] = 0;
        } else {
          next_active_.push_back(p);
        }
      }
      active_.swap(next_active_);
    }
    return Status::OK();
  }

 private:
  bool is_and_;
  std::vector<CompiledExprPtr> children_;
  ColumnVec cv_;
  std::vector<uint32_t> active_, next_active_, subrows_;
};

class IsNullNode final : public CompiledExpr {
 public:
  IsNullNode(CompiledExprPtr child, bool negated)
      : CompiledExpr(TypeId::kBool), child_(std::move(child)), negated_(negated) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(child_->Eval(batch, rows, fallback_rows, &cv_));
    size_t n = rows.size();
    out->Reset(TypeId::kBool, false, n);
    for (size_t k = 0; k < n; ++k) {
      bool is_null = cv_.NullAt(k);
      out->i64[k] = (negated_ ? !is_null : is_null) ? 1 : 0;
    }
    return Status::OK();
  }

 private:
  CompiledExprPtr child_;
  bool negated_;
  ColumnVec cv_;
};

/// Lazy CASE: WHEN i only evaluates over rows arms 0..i-1 left undecided,
/// and THEN i only over the rows WHEN i actually took — so a THEN that would
/// error on an untaken row stays silent, exactly like the row evaluator.
class CaseNode final : public CompiledExpr {
 public:
  CaseNode(const CaseExpr* src, std::vector<CompiledExprPtr> whens,
           std::vector<CompiledExprPtr> thens, CompiledExprPtr else_node)
      : CompiledExpr(src->result_type()),
        whens_(std::move(whens)),
        thens_(std::move(thens)),
        else_(std::move(else_node)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    size_t n = rows.size();
    out->Reset(type_, type_ == TypeId::kString, n);
    undecided_.resize(n);
    for (size_t k = 0; k < n; ++k) undecided_[k] = static_cast<uint32_t>(k);
    for (size_t i = 0; i < whens_.size(); ++i) {
      if (undecided_.empty()) break;
      subrows_.clear();
      for (uint32_t p : undecided_) subrows_.push_back(rows[p]);
      RELOPT_RETURN_NOT_OK(whens_[i]->Eval(batch, subrows_, fallback_rows, &wv_));
      taken_pos_.clear();
      taken_sub_.clear();
      rest_.clear();
      for (size_t j = 0; j < undecided_.size(); ++j) {
        bool is_null, b;
        ReadBool(wv_, j, &is_null, &b);
        if (!is_null && b) {
          taken_pos_.push_back(undecided_[j]);
          taken_sub_.push_back(subrows_[j]);
        } else {
          rest_.push_back(undecided_[j]);
        }
      }
      if (!taken_pos_.empty()) {
        RELOPT_RETURN_NOT_OK(thens_[i]->Eval(batch, taken_sub_, fallback_rows, &tv_));
        for (size_t j = 0; j < taken_pos_.size(); ++j) {
          StoreValue(out, taken_pos_[j], CoerceValue(tv_.GetValue(j), type_));
        }
      }
      undecided_.swap(rest_);
    }
    if (undecided_.empty()) return Status::OK();
    if (else_ == nullptr) {
      for (uint32_t p : undecided_) out->nulls[p] = 1;
      return Status::OK();
    }
    subrows_.clear();
    for (uint32_t p : undecided_) subrows_.push_back(rows[p]);
    RELOPT_RETURN_NOT_OK(else_->Eval(batch, subrows_, fallback_rows, &tv_));
    for (size_t j = 0; j < undecided_.size(); ++j) {
      StoreValue(out, undecided_[j], CoerceValue(tv_.GetValue(j), type_));
    }
    return Status::OK();
  }

 private:
  std::vector<CompiledExprPtr> whens_, thens_;
  CompiledExprPtr else_;
  ColumnVec wv_, tv_;
  std::vector<uint32_t> undecided_, rest_, taken_pos_, taken_sub_, subrows_;
};

class AbsNode final : public CompiledExpr {
 public:
  AbsNode(const FunctionCallExpr* src, CompiledExprPtr arg)
      : CompiledExpr(src->result_type()), src_(src), arg_(std::move(arg)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(arg_->Eval(batch, rows, fallback_rows, &av_));
    size_t n = rows.size();
    if (av_.boxed) {
      out->Reset(type_, true, n);
      for (size_t k = 0; k < n; ++k) {
        if (av_.NullAt(k)) {
          out->nulls[k] = 1;
          continue;
        }
        const Value& v = av_.BoxedAt(k);
        if (!IsNumeric(v.type())) {
          return Status::TypeError("abs on non-numeric operand in " + src_->ToString());
        }
        if (v.type() == TypeId::kInt64) {
          out->vals[k] = Value::Int(WrapAbsInt64(v.AsInt()));
        } else {
          double d = v.NumericAsDouble();
          out->vals[k] = Value::Double(d < 0 ? -d : d);
        }
      }
      return Status::OK();
    }
    bool as_int = av_.type == TypeId::kInt64;
    out->Reset(as_int ? TypeId::kInt64 : TypeId::kDouble, false, n);
    for (size_t k = 0; k < n; ++k) {
      if (av_.NullAt(k)) {
        out->nulls[k] = 1;
      } else if (as_int) {
        out->i64[k] = WrapAbsInt64(av_.I64At(k));
      } else {
        double d = av_.F64At(k);
        out->f64[k] = d < 0 ? -d : d;
      }
    }
    return Status::OK();
  }

 private:
  const FunctionCallExpr* src_;
  CompiledExprPtr arg_;
  ColumnVec av_;
};

class LengthNode final : public CompiledExpr {
 public:
  LengthNode(const FunctionCallExpr* src, CompiledExprPtr arg)
      : CompiledExpr(TypeId::kInt64), src_(src), arg_(std::move(arg)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(arg_->Eval(batch, rows, fallback_rows, &av_));
    size_t n = rows.size();
    out->Reset(TypeId::kInt64, false, n);
    Value storage;
    for (size_t k = 0; k < n; ++k) {
      if (av_.NullAt(k)) {
        out->nulls[k] = 1;
        continue;
      }
      const Value& v = BorrowValue(av_, k, &storage);
      if (v.type() != TypeId::kString) {
        return Status::TypeError("length on non-string operand in " + src_->ToString());
      }
      out->i64[k] = static_cast<int64_t>(v.AsString().size());
    }
    return Status::OK();
  }

 private:
  const FunctionCallExpr* src_;
  CompiledExprPtr arg_;
  ColumnVec av_;
};

class CaseMapNode final : public CompiledExpr {
 public:
  CaseMapNode(const FunctionCallExpr* src, CompiledExprPtr arg, bool upper)
      : CompiledExpr(TypeId::kString), src_(src), arg_(std::move(arg)), upper_(upper) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(arg_->Eval(batch, rows, fallback_rows, &av_));
    size_t n = rows.size();
    out->Reset(TypeId::kString, true, n);
    Value storage;
    for (size_t k = 0; k < n; ++k) {
      if (av_.NullAt(k)) {
        out->nulls[k] = 1;
        continue;
      }
      const Value& v = BorrowValue(av_, k, &storage);
      if (v.type() != TypeId::kString) {
        return Status::TypeError(std::string(upper_ ? "upper" : "lower") +
                                 " on non-string operand in " + src_->ToString());
      }
      std::string s = v.AsString();
      if (upper_) {
        for (char& c : s) {
          if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
        }
      } else {
        for (char& c : s) {
          if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        }
      }
      out->vals[k] = Value::String(std::move(s));
    }
    return Status::OK();
  }

 private:
  const FunctionCallExpr* src_;
  CompiledExprPtr arg_;
  bool upper_;
  ColumnVec av_;
};

/// Lazy COALESCE: argument i only evaluates over the rows 0..i-1 left NULL.
class CoalesceNode final : public CompiledExpr {
 public:
  CoalesceNode(const FunctionCallExpr* src, std::vector<CompiledExprPtr> args)
      : CompiledExpr(src->result_type()), args_(std::move(args)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    size_t n = rows.size();
    out->Reset(type_, type_ == TypeId::kString, n);
    undecided_.resize(n);
    for (size_t k = 0; k < n; ++k) undecided_[k] = static_cast<uint32_t>(k);
    for (const CompiledExprPtr& arg : args_) {
      if (undecided_.empty()) break;
      subrows_.clear();
      for (uint32_t p : undecided_) subrows_.push_back(rows[p]);
      RELOPT_RETURN_NOT_OK(arg->Eval(batch, subrows_, fallback_rows, &av_));
      rest_.clear();
      for (size_t j = 0; j < undecided_.size(); ++j) {
        uint32_t p = undecided_[j];
        if (av_.NullAt(j)) {
          rest_.push_back(p);
        } else {
          StoreValue(out, p, CoerceValue(av_.GetValue(j), type_));
        }
      }
      undecided_.swap(rest_);
    }
    for (uint32_t p : undecided_) out->nulls[p] = 1;
    return Status::OK();
  }

 private:
  std::vector<CompiledExprPtr> args_;
  ColumnVec av_;
  std::vector<uint32_t> undecided_, rest_, subrows_;
};

class NullIfNode final : public CompiledExpr {
 public:
  NullIfNode(const FunctionCallExpr* src, CompiledExprPtr a, CompiledExprPtr b)
      : CompiledExpr(src->result_type()), a_(std::move(a)), b_(std::move(b)) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    RELOPT_RETURN_NOT_OK(a_->Eval(batch, rows, fallback_rows, &av_));
    RELOPT_RETURN_NOT_OK(b_->Eval(batch, rows, fallback_rows, &bv_));
    size_t n = rows.size();
    out->Reset(type_, type_ == TypeId::kString, n);
    Value as, bs;
    for (size_t k = 0; k < n; ++k) {
      if (av_.NullAt(k) || bv_.NullAt(k)) {
        StoreValue(out, k, CoerceValue(av_.GetValue(k), type_));
        continue;
      }
      const Value& a = BorrowValue(av_, k, &as);
      const Value& b = BorrowValue(bv_, k, &bs);
      RELOPT_ASSIGN_OR_RETURN(int c, a.Compare(b));
      if (c == 0) {
        out->nulls[k] = 1;
      } else {
        StoreValue(out, k, CoerceValue(a, type_));
      }
    }
    return Status::OK();
  }

 private:
  CompiledExprPtr a_, b_;
  ColumnVec av_, bv_;
};

/// Per-row escape hatch for expression kinds without a kernel. Every row it
/// touches is charged to the operator's fallback stat and the engine-wide
/// counter, so row-loop leakage under batch drive is observable, not silent.
class FallbackNode final : public CompiledExpr {
 public:
  explicit FallbackNode(const Expression* e) : CompiledExpr(e->result_type()), e_(e) {}

  Status Eval(const TupleBatch& batch, const std::vector<uint32_t>& rows,
              uint64_t* fallback_rows, ColumnVec* out) override {
    size_t n = rows.size();
    out->Reset(type_, true, n);
    for (size_t k = 0; k < n; ++k) {
      RELOPT_ASSIGN_OR_RETURN(Value v, e_->Eval(batch.RowAt(rows[k])));
      if (v.is_null()) {
        out->nulls[k] = 1;
      } else {
        out->vals[k] = std::move(v);
      }
    }
    if (fallback_rows != nullptr) *fallback_rows += n;
    EngineMetrics::Get().exec_batch_fallback_rows->Add(static_cast<uint64_t>(n));
    return Status::OK();
  }

 private:
  const Expression* e_;
};

// A conjunct of the shape `column <op> literal` (or the mirror), recognized
// once at compile so the per-row loop can compare values directly instead of
// routing every row through virtual Eval calls and Value copies.
struct ColumnLiteralCompare {
  int col;
  CompareOp op;
  const Value* literal;  // owned by the expression tree
};

std::optional<ColumnLiteralCompare> MatchColumnLiteralCompare(const Expression* e) {
  if (e->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(e);
  const Expression* l = cmp->left();
  const Expression* r = cmp->right();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    const auto* col = static_cast<const ColumnRefExpr*>(l);
    if (!col->IsBound()) return std::nullopt;
    return ColumnLiteralCompare{col->bound_index(), cmp->op(),
                                &static_cast<const LiteralExpr*>(r)->value()};
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    const auto* col = static_cast<const ColumnRefExpr*>(r);
    if (!col->IsBound()) return std::nullopt;
    return ColumnLiteralCompare{col->bound_index(), MirrorOp(cmp->op()),
                                &static_cast<const LiteralExpr*>(l)->value()};
  }
  return std::nullopt;
}

/// `column <op> column` over two bound references (e.g. `a < b` filters,
/// non-equi join residuals): both sides compare straight from storage.
struct ColumnColumnCompare {
  int lcol;
  int rcol;
  CompareOp op;
};

std::optional<ColumnColumnCompare> MatchColumnColumnCompare(const Expression* e) {
  if (e->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(e);
  if (cmp->left()->kind() != ExprKind::kColumnRef ||
      cmp->right()->kind() != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  const auto* l = static_cast<const ColumnRefExpr*>(cmp->left());
  const auto* r = static_cast<const ColumnRefExpr*>(cmp->right());
  if (!l->IsBound() || !r->IsBound()) return std::nullopt;
  return ColumnColumnCompare{l->bound_index(), r->bound_index(), cmp->op()};
}

int DirectColumnOf(const Expression* e) {
  if (e->kind() != ExprKind::kColumnRef) return -1;
  const auto* col = static_cast<const ColumnRefExpr*>(e);
  return col->IsBound() ? col->bound_index() : -1;
}

inline void InvertKeyTail(std::string* key, size_t from) {
  for (size_t i = from; i < key->size(); ++i) {
    (*key)[i] = static_cast<char>(~static_cast<unsigned char>((*key)[i]));
  }
}

}  // namespace

// ---------------------------------------------------------------- ColumnVec --

void ColumnVec::Reset(TypeId t, bool boxed_storage, size_t num_rows) {
  type = t;
  is_const = false;
  boxed = boxed_storage;
  n = num_rows;
  nulls.assign(num_rows, 0);
  if (boxed) {
    vals.assign(num_rows, Value());
    i64.clear();
    f64.clear();
  } else if (t == TypeId::kDouble) {
    f64.assign(num_rows, 0.0);
    i64.clear();
    vals.clear();
  } else {
    i64.assign(num_rows, 0);
    f64.clear();
    vals.clear();
  }
}

Value ColumnVec::GetValue(size_t k) const {
  size_t p = phys(k);
  if (nulls[p] != 0) return Value::Null(type);
  if (boxed) return vals[p];
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(i64[p] != 0);
    case TypeId::kInt64:
      return Value::Int(i64[p]);
    case TypeId::kDouble:
      return Value::Double(f64[p]);
    default:
      return Value::Null(type);
  }
}

// -------------------------------------------------------------- CompileExpr --

std::vector<const Expression*> CollectConjuncts(const Expression* pred) {
  std::vector<const Expression*> out;
  CollectConjunctsInto(pred, &out);
  return out;
}

CompiledExprPtr CompileExpr(const Expression* expr) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return std::make_unique<LitNode>(static_cast<const LiteralExpr*>(expr)->value());
    case ExprKind::kColumnRef: {
      const auto* col = static_cast<const ColumnRefExpr*>(expr);
      if (!col->IsBound()) break;  // unbound: fall through to the fallback
      return std::make_unique<ColRefNode>(col);
    }
    case ExprKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonExpr*>(expr);
      return std::make_unique<CmpNode>(cmp->op(), CompileExpr(cmp->left()),
                                       CompileExpr(cmp->right()));
    }
    case ExprKind::kArithmetic: {
      const auto* ar = static_cast<const ArithmeticExpr*>(expr);
      return std::make_unique<ArithNode>(ar, CompileExpr(ar->left()), CompileExpr(ar->right()));
    }
    case ExprKind::kLogical: {
      const auto* logical = static_cast<const LogicalExpr*>(expr);
      std::vector<CompiledExprPtr> kids;
      kids.reserve(logical->children().size());
      for (const ExprPtr& c : logical->children()) kids.push_back(CompileExpr(c.get()));
      if (logical->op() == LogicalOp::kNot) {
        return std::make_unique<NotNode>(std::move(kids[0]));
      }
      return std::make_unique<AndOrNode>(logical->op(), std::move(kids));
    }
    case ExprKind::kIsNull: {
      const auto* in = static_cast<const IsNullExpr*>(expr);
      return std::make_unique<IsNullNode>(CompileExpr(in->child()), in->negated());
    }
    case ExprKind::kCase: {
      const auto* c = static_cast<const CaseExpr*>(expr);
      std::vector<CompiledExprPtr> whens, thens;
      whens.reserve(c->num_arms());
      thens.reserve(c->num_arms());
      for (size_t i = 0; i < c->num_arms(); ++i) {
        whens.push_back(CompileExpr(c->when_at(i)));
        thens.push_back(CompileExpr(c->then_at(i)));
      }
      CompiledExprPtr else_node =
          c->else_expr() != nullptr ? CompileExpr(c->else_expr()) : nullptr;
      return std::make_unique<CaseNode>(c, std::move(whens), std::move(thens),
                                        std::move(else_node));
    }
    case ExprKind::kFunctionCall: {
      const auto* f = static_cast<const FunctionCallExpr*>(expr);
      std::vector<CompiledExprPtr> args;
      args.reserve(f->args().size());
      for (const ExprPtr& a : f->args()) args.push_back(CompileExpr(a.get()));
      switch (f->func()) {
        case ScalarFunc::kAbs:
          return std::make_unique<AbsNode>(f, std::move(args[0]));
        case ScalarFunc::kLength:
          return std::make_unique<LengthNode>(f, std::move(args[0]));
        case ScalarFunc::kUpper:
          return std::make_unique<CaseMapNode>(f, std::move(args[0]), /*upper=*/true);
        case ScalarFunc::kLower:
          return std::make_unique<CaseMapNode>(f, std::move(args[0]), /*upper=*/false);
        case ScalarFunc::kCoalesce:
          return std::make_unique<CoalesceNode>(f, std::move(args));
        case ScalarFunc::kNullIf:
          return std::make_unique<NullIfNode>(f, std::move(args[0]), std::move(args[1]));
      }
      break;
    }
    default:
      break;
  }
  // Aggregate calls, parameters, unbound references: per-row, observable.
  return std::make_unique<FallbackNode>(expr);
}

// ----------------------------------------------------------- BatchPredicate --

BatchPredicate::BatchPredicate(const Expression* pred) {
  for (const Expression* c : CollectConjuncts(pred)) {
    Conjunct conj;
    conj.source = c;
    if (std::optional<ColumnLiteralCompare> fast = MatchColumnLiteralCompare(c)) {
      conj.fused_col_lit = true;
      conj.lcol = fast->col;
      conj.op = fast->op;
      conj.literal = fast->literal;
    } else if (std::optional<ColumnColumnCompare> cc = MatchColumnColumnCompare(c)) {
      conj.fused_col_col = true;
      conj.lcol = cc->lcol;
      conj.rcol = cc->rcol;
      conj.op = cc->op;
    } else {
      conj.tree = CompileExpr(c);
    }
    conjuncts_.push_back(std::move(conj));
  }
}

Status BatchPredicate::Filter(TupleBatch* batch, uint64_t* fallback_rows) {
  std::vector<uint32_t>* sel = batch->mutable_selection();
  for (const Conjunct& conj : conjuncts_) {
    if (sel->empty()) break;
    size_t kept = 0;
    if (conj.fused_col_lit) {
      if (conj.literal->is_null()) {
        // `col <op> NULL` is NULL for every row; the filter rejects them all.
        sel->clear();
        break;
      }
      for (uint32_t row : *sel) {
        const Tuple& t = batch->RowAt(row);
        if (static_cast<size_t>(conj.lcol) >= t.NumValues()) {
          // Malformed row; route through Eval for its diagnostic.
          RELOPT_ASSIGN_OR_RETURN(Value v, conj.source->Eval(t));
          if (!v.is_null() && v.AsBool()) (*sel)[kept++] = row;
          continue;
        }
        const Value& v = t.At(static_cast<size_t>(conj.lcol));
        if (v.is_null()) continue;  // NULL comparison -> NULL -> rejected
        RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(*conj.literal));
        if (ApplyOp(conj.op, c)) (*sel)[kept++] = row;
      }
    } else if (conj.fused_col_col) {
      for (uint32_t row : *sel) {
        const Tuple& t = batch->RowAt(row);
        if (static_cast<size_t>(conj.lcol) >= t.NumValues() ||
            static_cast<size_t>(conj.rcol) >= t.NumValues()) {
          RELOPT_ASSIGN_OR_RETURN(Value v, conj.source->Eval(t));
          if (!v.is_null() && v.AsBool()) (*sel)[kept++] = row;
          continue;
        }
        const Value& a = t.At(static_cast<size_t>(conj.lcol));
        const Value& b = t.At(static_cast<size_t>(conj.rcol));
        if (a.is_null() || b.is_null()) continue;  // NULL never passes
        RELOPT_ASSIGN_OR_RETURN(int c, a.Compare(b));
        if (ApplyOp(conj.op, c)) (*sel)[kept++] = row;
      }
    } else {
      RELOPT_RETURN_NOT_OK(conj.tree->Eval(*batch, *sel, fallback_rows, &scratch_));
      for (size_t k = 0; k < sel->size(); ++k) {
        bool is_null, b;
        ReadBool(scratch_, k, &is_null, &b);
        if (!is_null && b) (*sel)[kept++] = (*sel)[k];
      }
    }
    sel->resize(kept);
  }
  return Status::OK();
}

// ----------------------------------------------------------- BatchProjector --

BatchProjector::BatchProjector(const std::vector<ExprPtr>* exprs) : exprs_(exprs) {
  size_t n = exprs->size();
  direct_col_.resize(n, -1);
  compiled_.resize(n);
  vecs_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    direct_col_[i] = DirectColumnOf((*exprs)[i].get());
    if (direct_col_[i] < 0) compiled_[i] = CompileExpr((*exprs)[i].get());
  }
}

Status BatchProjector::Project(const TupleBatch& in, TupleBatch* out,
                               uint64_t* fallback_rows) {
  out->Clear();
  size_t n = in.NumSelected();
  for (size_t i = 0; i < exprs_->size(); ++i) {
    if (direct_col_[i] < 0) {
      RELOPT_RETURN_NOT_OK(compiled_[i]->Eval(in, in.selection(), fallback_rows, &vecs_[i]));
    }
  }
  for (size_t k = 0; k < n; ++k) {
    const Tuple& row = in.SelectedRow(k);
    Tuple* slot = out->AppendRow();
    for (size_t i = 0; i < exprs_->size(); ++i) {
      int dc = direct_col_[i];
      if (dc >= 0) {
        if (static_cast<size_t>(dc) < row.NumValues()) {
          slot->Append(row.At(static_cast<size_t>(dc)));
        } else {
          // Malformed row; route through Eval for its diagnostic.
          RELOPT_ASSIGN_OR_RETURN(Value v, (*exprs_)[i]->Eval(row));
          slot->Append(std::move(v));
        }
        continue;
      }
      slot->Append(vecs_[i].GetValue(k));
    }
  }
  return Status::OK();
}

// ----------------------------------------------------------- SortKeyEncoder --

SortKeyEncoder::SortKeyEncoder(std::vector<const Expression*> exprs, std::vector<bool> desc)
    : exprs_(std::move(exprs)), desc_(std::move(desc)) {
  size_t n = exprs_.size();
  direct_col_.resize(n, -1);
  compiled_.resize(n);
  vecs_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    direct_col_[i] = DirectColumnOf(exprs_[i]);
    if (direct_col_[i] < 0) compiled_[i] = CompileExpr(exprs_[i]);
  }
}

Status SortKeyEncoder::EncodeBatch(const TupleBatch& batch, std::vector<std::string>* keys,
                                   uint64_t* fallback_rows) {
  size_t n = batch.NumSelected();
  if (keys->size() < n) keys->resize(n);
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (direct_col_[i] < 0) {
      RELOPT_RETURN_NOT_OK(
          compiled_[i]->Eval(batch, batch.selection(), fallback_rows, &vecs_[i]));
    }
  }
  Value storage;
  for (size_t k = 0; k < n; ++k) {
    const Tuple& row = batch.SelectedRow(k);
    std::string& key = (*keys)[k];
    key.clear();
    for (size_t i = 0; i < exprs_.size(); ++i) {
      size_t offset = key.size();
      int dc = direct_col_[i];
      if (dc >= 0) {
        if (static_cast<size_t>(dc) < row.NumValues()) {
          EncodeKeyValue(row.At(static_cast<size_t>(dc)), &key);
        } else {
          RELOPT_ASSIGN_OR_RETURN(Value v, exprs_[i]->Eval(row));
          EncodeKeyValue(v, &key);
        }
      } else {
        const ColumnVec& vec = vecs_[i];
        if (vec.boxed && !vec.NullAt(k)) {
          EncodeKeyValue(vec.BoxedAt(k), &key);
        } else {
          storage = vec.GetValue(k);
          EncodeKeyValue(storage, &key);
        }
      }
      if (desc_[i]) InvertKeyTail(&key, offset);
    }
  }
  return Status::OK();
}

Status SortKeyEncoder::EncodeRow(const Tuple& t, std::string* key) const {
  key->clear();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    size_t offset = key->size();
    int dc = direct_col_[i];
    if (dc >= 0 && static_cast<size_t>(dc) < t.NumValues()) {
      EncodeKeyValue(t.At(static_cast<size_t>(dc)), key);
    } else {
      RELOPT_ASSIGN_OR_RETURN(Value v, exprs_[i]->Eval(t));
      EncodeKeyValue(v, key);
    }
    if (desc_[i]) InvertKeyTail(key, offset);
  }
  return Status::OK();
}

// ---------------------------------------------------------- ComputeJoinKeys --

Status ComputeJoinKeys(const TupleBatch& batch, const std::vector<size_t>& key_cols,
                       std::vector<std::optional<std::string>>* keys) {
  size_t n = batch.NumSelected();
  if (keys->size() < n) keys->resize(n);
  for (size_t k = 0; k < n; ++k) {
    const Tuple& row = batch.SelectedRow(k);
    std::optional<std::string>& slot = (*keys)[k];
    if (!slot.has_value()) slot.emplace();
    std::string& key = *slot;
    key.clear();
    for (size_t col : key_cols) {
      const Value& v = row.At(col);
      if (v.is_null()) {
        slot.reset();  // NULL keys never match an equi join
        break;
      }
      EncodeKeyValue(v, &key);
    }
  }
  return Status::OK();
}

// --------------------------------------------------------- GroupKeyComputer --

GroupKeyComputer::GroupKeyComputer(const std::vector<const Expression*>* exprs)
    : exprs_(exprs) {
  size_t n = exprs->size();
  direct_col_.resize(n, -1);
  compiled_.resize(n);
  vecs_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    direct_col_[i] = DirectColumnOf((*exprs)[i]);
    if (direct_col_[i] < 0) compiled_[i] = CompileExpr((*exprs)[i]);
  }
}

Status GroupKeyComputer::Compute(const TupleBatch& batch, std::vector<std::string>* keys,
                                 uint64_t* fallback_rows) {
  last_batch_ = &batch;
  size_t n = batch.NumSelected();
  if (keys->size() < n) keys->resize(n);
  for (size_t i = 0; i < exprs_->size(); ++i) {
    if (direct_col_[i] < 0) {
      RELOPT_RETURN_NOT_OK(
          compiled_[i]->Eval(batch, batch.selection(), fallback_rows, &vecs_[i]));
    }
  }
  Value storage;
  for (size_t k = 0; k < n; ++k) {
    const Tuple& row = batch.SelectedRow(k);
    std::string& key = (*keys)[k];
    key.clear();
    for (size_t i = 0; i < exprs_->size(); ++i) {
      int dc = direct_col_[i];
      if (dc >= 0) {
        if (static_cast<size_t>(dc) < row.NumValues()) {
          EncodeKeyValue(row.At(static_cast<size_t>(dc)), &key);
        } else {
          RELOPT_ASSIGN_OR_RETURN(Value v, (*exprs_)[i]->Eval(row));
          EncodeKeyValue(v, &key);
        }
      } else {
        const ColumnVec& vec = vecs_[i];
        if (vec.boxed && !vec.NullAt(k)) {
          EncodeKeyValue(vec.BoxedAt(k), &key);
        } else {
          storage = vec.GetValue(k);
          EncodeKeyValue(storage, &key);
        }
      }
    }
  }
  return Status::OK();
}

Value GroupKeyComputer::KeyValue(size_t i, size_t k) const {
  int dc = direct_col_[i];
  if (dc >= 0) return last_batch_->SelectedRow(k).At(static_cast<size_t>(dc));
  return vecs_[i].GetValue(k);
}

}  // namespace relopt
