#include "expr/vector_eval.h"

#include <optional>

#include "types/key_codec.h"

namespace relopt {

namespace {

void CollectConjunctsInto(const Expression* pred, std::vector<const Expression*>* out) {
  if (pred == nullptr) return;
  if (pred->kind() == ExprKind::kLogical) {
    const auto* logical = static_cast<const LogicalExpr*>(pred);
    if (logical->op() == LogicalOp::kAnd) {
      for (const ExprPtr& child : logical->children()) {
        CollectConjunctsInto(child.get(), out);
      }
      return;
    }
  }
  out->push_back(pred);
}

// A conjunct of the shape `column <op> literal` (or the mirror), recognized
// once per batch so the per-row loop can compare values directly instead of
// routing every row through two virtual Eval calls and two Value copies.
struct ColumnLiteralCompare {
  int col;
  CompareOp op;
  const Value* literal;  // owned by the expression tree
};

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // eq/ne are symmetric
  }
}

bool ApplyOp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::optional<ColumnLiteralCompare> MatchColumnLiteralCompare(const Expression* e) {
  if (e->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(e);
  const Expression* l = cmp->left();
  const Expression* r = cmp->right();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    const auto* col = static_cast<const ColumnRefExpr*>(l);
    if (!col->IsBound()) return std::nullopt;
    return ColumnLiteralCompare{col->bound_index(), cmp->op(),
                                &static_cast<const LiteralExpr*>(r)->value()};
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    const auto* col = static_cast<const ColumnRefExpr*>(r);
    if (!col->IsBound()) return std::nullopt;
    return ColumnLiteralCompare{col->bound_index(), MirrorOp(cmp->op()),
                                &static_cast<const LiteralExpr*>(l)->value()};
  }
  return std::nullopt;
}

}  // namespace

std::vector<const Expression*> CollectConjuncts(const Expression* pred) {
  std::vector<const Expression*> out;
  CollectConjunctsInto(pred, &out);
  return out;
}

Status FilterBatch(const std::vector<const Expression*>& conjuncts, TupleBatch* batch) {
  std::vector<uint32_t>* sel = batch->mutable_selection();
  for (const Expression* conjunct : conjuncts) {
    if (sel->empty()) break;
    size_t kept = 0;
    if (std::optional<ColumnLiteralCompare> fast = MatchColumnLiteralCompare(conjunct)) {
      if (fast->literal->is_null()) {
        // `col <op> NULL` is NULL for every row; the filter rejects them all.
        sel->clear();
        break;
      }
      for (uint32_t row : *sel) {
        const Tuple& t = batch->RowAt(row);
        if (static_cast<size_t>(fast->col) >= t.NumValues()) {
          // Malformed row; route through Eval for its diagnostic.
          RELOPT_ASSIGN_OR_RETURN(Value v, conjunct->Eval(t));
          if (!v.is_null() && v.AsBool()) (*sel)[kept++] = row;
          continue;
        }
        const Value& v = t.At(static_cast<size_t>(fast->col));
        if (v.is_null()) continue;  // NULL comparison -> NULL -> rejected
        RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(*fast->literal));
        if (ApplyOp(fast->op, c)) (*sel)[kept++] = row;
      }
    } else {
      for (uint32_t row : *sel) {
        RELOPT_ASSIGN_OR_RETURN(Value v, conjunct->Eval(batch->RowAt(row)));
        if (!v.is_null() && v.AsBool()) (*sel)[kept++] = row;
      }
    }
    sel->resize(kept);
  }
  return Status::OK();
}

Status ProjectBatch(const std::vector<ExprPtr>& exprs, const TupleBatch& in, TupleBatch* out) {
  out->Clear();
  // Hoisted per-expression dispatch: a bare bound column reference copies the
  // value straight across; everything else goes through Eval per row.
  std::vector<int> direct_col(exprs.size(), -1);
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i]->kind() == ExprKind::kColumnRef) {
      const auto* col = static_cast<const ColumnRefExpr*>(exprs[i].get());
      if (col->IsBound()) direct_col[i] = col->bound_index();
    }
  }
  for (size_t k = 0; k < in.NumSelected(); ++k) {
    const Tuple& row = in.SelectedRow(k);
    Tuple* slot = out->AppendRow();
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (direct_col[i] >= 0 && static_cast<size_t>(direct_col[i]) < row.NumValues()) {
        slot->Append(row.At(static_cast<size_t>(direct_col[i])));
        continue;
      }
      RELOPT_ASSIGN_OR_RETURN(Value v, exprs[i]->Eval(row));
      slot->Append(std::move(v));
    }
  }
  return Status::OK();
}

Status ComputeGroupKeys(const std::vector<const Expression*>& exprs, const TupleBatch& batch,
                        std::vector<std::string>* keys) {
  if (keys->size() < batch.NumSelected()) keys->resize(batch.NumSelected());
  // Hoisted per-expression dispatch, same as ProjectBatch: a bare bound
  // column encodes straight from storage, everything else Evals per row.
  std::vector<int> direct_col(exprs.size(), -1);
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i]->kind() == ExprKind::kColumnRef) {
      const auto* col = static_cast<const ColumnRefExpr*>(exprs[i]);
      if (col->IsBound()) direct_col[i] = col->bound_index();
    }
  }
  for (size_t k = 0; k < batch.NumSelected(); ++k) {
    const Tuple& row = batch.SelectedRow(k);
    std::string& key = (*keys)[k];
    key.clear();
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (direct_col[i] >= 0 && static_cast<size_t>(direct_col[i]) < row.NumValues()) {
        EncodeKeyValue(row.At(static_cast<size_t>(direct_col[i])), &key);
        continue;
      }
      RELOPT_ASSIGN_OR_RETURN(Value v, exprs[i]->Eval(row));
      EncodeKeyValue(v, &key);
    }
  }
  return Status::OK();
}

}  // namespace relopt
