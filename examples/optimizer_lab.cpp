// Optimizer lab: poke at the optimizer interactively from code — compare
// enumeration strategies, stats modes, and EXPLAIN output on one query.
//
//   ./build/examples/optimizer_lab
#include <iostream>

#include "engine/database.h"
#include "workload/queries.h"

using namespace relopt;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return result.MoveValue();
}
}  // namespace

int main() {
  Database db;

  // A 5-relation chain with geometrically growing sizes: join order matters.
  JoinWorkloadSpec spec;
  spec.num_relations = 5;
  spec.base_rows = 500;
  spec.growth = 3.0;
  spec.with_indexes = true;
  std::string query = Unwrap(BuildChainWorkload(&db, spec));
  std::cout << "workload query:\n  " << query << "\n\n";

  std::cout << "=== enumeration strategies on the same query ===\n";
  for (JoinEnumAlgorithm algo :
       {JoinEnumAlgorithm::kDpBushy, JoinEnumAlgorithm::kDpLeftDeep, JoinEnumAlgorithm::kGreedy,
        JoinEnumAlgorithm::kRandom, JoinEnumAlgorithm::kWorst}) {
    db.options().optimizer.join.algorithm = algo;
    OptimizeInfo info;
    PhysicalPtr plan = Unwrap(db.PlanQuery(query, &info));
    std::cout << "-- " << JoinEnumAlgorithmToString(algo)
              << "  (cost " << plan->est_cost().Total() << ", "
              << info.enum_stats.joins_costed << " joins costed)\n"
              << plan->ToString() << "\n";
  }

  // Execute the DP plan and compare estimate vs actual.
  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  QueryResult result = Unwrap(db.Execute(query));
  const ExecutionMetrics& m = db.last_metrics();
  std::cout << "=== DP plan executed ===\n"
            << "result: " << result.rows[0].At(0).ToString() << " rows counted\n"
            << "estimated cost " << m.est_cost.Total() << " (io=" << m.est_cost.page_ios
            << ", cpu=" << m.est_cost.cpu_tuples << ")\n"
            << "actual: " << m.io.page_reads << " reads, " << m.io.page_writes << " writes, "
            << m.tuples_processed << " tuples\n";
  return 0;
}
