// Join methods tour: force each join method on the same query and watch the
// measured page I/O match the cost model's story.
//
//   ./build/examples/join_methods_tour
#include <cstdio>
#include <iostream>

#include "engine/database.h"
#include "workload/generator.h"

using namespace relopt;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return result.MoveValue();
}

void DisableAll(JoinEnumOptions* o) {
  o->enable_nlj = o->enable_bnlj = o->enable_inlj = o->enable_smj = o->enable_hash = false;
}
}  // namespace

int main() {
  SessionOptions options;
  options.buffer_pool_pages = 96;
  Database db(options);

  TableSpec orders;
  orders.name = "orders";
  orders.num_rows = 20000;
  orders.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("cust", 0, 999),
                    ColumnSpec::Uniform("amount", 1, 9999)};
  Check(GenerateTable(&db, orders));

  TableSpec cust;
  cust.name = "cust";
  cust.num_rows = 1000;
  cust.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("region", 0, 9)};
  cust.seed = 2;
  Check(GenerateTable(&db, cust));
  Check(db.Execute("CREATE INDEX idx_cust_id ON cust (id)").status());

  const std::string query =
      "SELECT count(*) FROM orders, cust WHERE orders.cust = cust.id AND cust.region = 3";

  struct MethodToggle {
    const char* name;
    bool JoinEnumOptions::*flag;
  };
  const MethodToggle methods[] = {
      {"nested-loop", &JoinEnumOptions::enable_nlj},
      {"block-nested-loop", &JoinEnumOptions::enable_bnlj},
      {"index-nested-loop", &JoinEnumOptions::enable_inlj},
      {"sort-merge", &JoinEnumOptions::enable_smj},
      {"hash", &JoinEnumOptions::enable_hash},
  };

  std::printf("%-18s %10s %10s %10s %10s\n", "method", "est_cost", "reads", "tuples", "rows");
  for (const MethodToggle& method : methods) {
    DisableAll(&db.options().optimizer.join);
    db.options().optimizer.join.*(method.flag) = true;
    PhysicalPtr plan = Unwrap(db.PlanQuery(query));
    if (plan->est_cost().cpu_tuples > 5e7) {
      std::printf("%-18s %10.0f %10s %10s %10s  (estimate only; too slow to run)\n",
                  method.name, plan->est_cost().Total(), "-", "-", "-");
      continue;
    }
    Check(db.pool()->FlushAll());
    Check(db.pool()->EvictAll());
    db.ResetCounters();
    QueryResult result = Unwrap(db.ExecutePlan(*plan));
    const ExecutionMetrics& m = db.last_metrics();
    std::printf("%-18s %10.0f %10llu %10llu %10lld\n", method.name, plan->est_cost().Total(),
                static_cast<unsigned long long>(m.io.page_reads),
                static_cast<unsigned long long>(m.tuples_processed),
                static_cast<long long>(result.rows[0].At(0).AsInt()));
  }

  // What does the optimizer pick when everything is allowed?
  db.options().optimizer.join = JoinEnumOptions{};
  PhysicalPtr best = Unwrap(db.PlanQuery(query));
  std::cout << "\noptimizer's choice with all methods enabled:\n" << best->ToString();
  return 0;
}
