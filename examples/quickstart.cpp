// Quickstart: create tables, load rows, ANALYZE, and run optimized queries.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "engine/database.h"

using namespace relopt;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return result.MoveValue();
}
}  // namespace

int main() {
  Database db;

  // Schema + data via plain SQL.
  Check(db.Execute("CREATE TABLE users (id INT, name TEXT, age INT)").status());
  Check(db.Execute("CREATE TABLE orders (id INT, user_id INT, amount DOUBLE)").status());
  Check(db.Execute("INSERT INTO users VALUES "
                   "(1, 'ada', 36), (2, 'brian', 41), (3, 'cliff', 29), (4, 'dana', 35)")
            .status());
  Check(db.Execute("INSERT INTO orders VALUES "
                   "(100, 1, 9.5), (101, 1, 12.0), (102, 2, 30.25), (103, 3, 5.0), "
                   "(104, 3, 7.75), (105, 3, 1.5)")
            .status());

  // Secondary index + statistics for the optimizer.
  Check(db.Execute("CREATE INDEX idx_orders_user ON orders (user_id)").status());
  Check(db.Execute("ANALYZE").status());

  // A filtered join with aggregation, ordered.
  const std::string query =
      "SELECT users.name, count(*) AS n, sum(orders.amount) AS total "
      "FROM users JOIN orders ON users.id = orders.user_id "
      "WHERE users.age < 40 "
      "GROUP BY users.name "
      "ORDER BY total DESC";

  std::cout << "=== plan ===\n" << Unwrap(db.Explain(query)) << "\n";
  QueryResult result = Unwrap(db.Execute(query));
  std::cout << "=== result ===\n" << result.ToString();

  const ExecutionMetrics& m = db.last_metrics();
  std::cout << "\npage reads: " << m.io.page_reads << ", pool hits: " << m.pool.hits
            << ", tuples processed: " << m.tuples_processed << "\n";
  return 0;
}
