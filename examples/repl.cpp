// Interactive SQL shell over the engine.
//
//   ./build/examples/repl
//
// Meta-commands:
//   \help               this text
//   \tables             list tables (with row/page counts)
//   \stats <table>      show ANALYZE statistics
//   \metrics            counters from the last query
//   \mode <dp|dpccp|leftdeep|greedy|exhaustive|random|worst|simpli2|naive>   optimizer mode
//   \stats_mode <nostats|systemr|histogram>                    estimation mode
//   \feedback <on|off>  cardinality feedback (harvest actuals, reuse next time)
//   \parallel <n>       worker threads for SELECT execution (1 = serial)
//   \demo               load a small demo dataset
//   \quit
//
// Everything else is SQL (multi-statement scripts separated by ';' work).
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/database.h"
#include "util/str_util.h"

using namespace relopt;

namespace {

void PrintHelp() {
  std::cout <<
      "SQL: CREATE TABLE/INDEX, INSERT, DELETE, ANALYZE, SELECT, EXPLAIN [ANALYZE]\n"
      "  \\help  \\tables  \\stats <t>  \\metrics  \\demo  \\quit\n"
      "  \\mode <dp|dpccp|leftdeep|greedy|exhaustive|random|worst|simpli2|naive>\n"
      "  \\stats_mode <nostats|systemr|histogram>\n"
      "  \\feedback <on|off>   cardinality feedback (see relopt_feedback())\n"
      "  \\parallel <n>   worker threads for SELECT execution (1 = serial)\n";
}

void PrintTables(Database* db) {
  for (const std::string& name : db->catalog()->TableNames()) {
    TableInfo* table = *db->catalog()->GetTable(name);
    std::cout << "  " << name << table->schema().ToString() << "  rows=" << table->live_rows()
              << " pages=" << table->heap()->NumPages();
    if (!table->indexes().empty()) {
      std::cout << "  indexes:";
      for (IndexInfo* idx : table->indexes()) {
        std::cout << " " << idx->KeyDescription(table->schema())
                  << (idx->clustered ? " [clustered]" : "");
      }
    }
    std::cout << "\n";
  }
}

void PrintStats(Database* db, const std::string& table_name) {
  Result<TableInfo*> table = db->catalog()->GetTable(table_name);
  if (!table.ok()) {
    std::cout << table.status().ToString() << "\n";
    return;
  }
  if (!(*table)->has_stats()) {
    std::cout << "no statistics; run ANALYZE " << table_name << "\n";
    return;
  }
  std::cout << (*table)->stats().ToString((*table)->schema()) << "\n";
}

void PrintMetrics(const ExecutionMetrics& m) {
  std::cout << "rows=" << m.actual_rows << " (est " << m.est_rows << ")  page_reads="
            << m.io.page_reads << " page_writes=" << m.io.page_writes << "  pool hits/misses="
            << m.pool.hits << "/" << m.pool.misses << "  tuples=" << m.tuples_processed
            << "  est_cost=" << m.est_cost.Total() << " (io=" << m.est_cost.page_ios
            << " cpu=" << m.est_cost.cpu_tuples << ")\n";
}

bool SetMode(Database* db, const std::string& mode) {
  OptimizerOptions& opt = db->options().optimizer;
  opt.naive = false;
  if (mode == "dp") {
    opt.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  } else if (mode == "dpccp") {
    opt.join.algorithm = JoinEnumAlgorithm::kDpCcp;
  } else if (mode == "leftdeep") {
    opt.join.algorithm = JoinEnumAlgorithm::kDpLeftDeep;
  } else if (mode == "greedy") {
    opt.join.algorithm = JoinEnumAlgorithm::kGreedy;
  } else if (mode == "exhaustive") {
    opt.join.algorithm = JoinEnumAlgorithm::kExhaustive;
  } else if (mode == "random") {
    opt.join.algorithm = JoinEnumAlgorithm::kRandom;
  } else if (mode == "worst") {
    opt.join.algorithm = JoinEnumAlgorithm::kWorst;
  } else if (mode == "simpli2") {
    opt.join.algorithm = JoinEnumAlgorithm::kSimpliSquared;
  } else if (mode == "naive") {
    opt.naive = true;
  } else {
    return false;
  }
  return true;
}

bool SetStatsMode(Database* db, const std::string& mode) {
  if (mode == "nostats") {
    db->options().optimizer.stats_mode = StatsMode::kNoStats;
  } else if (mode == "systemr") {
    db->options().optimizer.stats_mode = StatsMode::kSystemR;
  } else if (mode == "histogram") {
    db->options().optimizer.stats_mode = StatsMode::kHistogram;
  } else {
    return false;
  }
  return true;
}

const char* kDemoScript = R"sql(
CREATE TABLE emp (id INT, name TEXT, dept_id INT, salary INT);
CREATE TABLE dept (id INT, dname TEXT);
INSERT INTO dept VALUES (0,'eng'), (1,'sales'), (2,'ops'), (3,'hr');
INSERT INTO emp VALUES
  (0,'ada',0,9100), (1,'brian',0,8200), (2,'cliff',1,4100), (3,'dana',1,4600),
  (4,'erin',2,5200), (5,'fred',2,5000), (6,'gina',3,3900), (7,'hugo',0,7800),
  (8,'iris',1,4300), (9,'jack',2,5500);
CREATE INDEX idx_emp_dept ON emp (dept_id);
ANALYZE;
)sql";

}  // namespace

int main() {
  Database db;
  std::cout << "relopt SQL shell -- \\help for commands, \\demo for sample data\n";

  std::string line;
  std::string pending;
  while (true) {
    std::cout << (pending.empty() ? "sql> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;

    if (trimmed[0] == '\\') {
      std::istringstream iss(trimmed.substr(1));
      std::string cmd, arg;
      iss >> cmd >> arg;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "tables") {
        PrintTables(&db);
      } else if (cmd == "stats") {
        PrintStats(&db, arg);
      } else if (cmd == "metrics") {
        PrintMetrics(db.last_metrics());
      } else if (cmd == "demo") {
        Result<QueryResult> r = db.Execute(kDemoScript);
        std::cout << (r.ok() ? "demo data loaded (emp, dept)\n" : r.status().ToString() + "\n");
      } else if (cmd == "mode") {
        std::cout << (SetMode(&db, arg) ? "ok\n" : "unknown mode '" + arg + "'\n");
      } else if (cmd == "stats_mode") {
        std::cout << (SetStatsMode(&db, arg) ? "ok\n" : "unknown stats mode '" + arg + "'\n");
      } else if (cmd == "feedback") {
        if (arg == "on" || arg == "off") {
          db.set_cardinality_feedback(arg == "on");
          std::cout << "cardinality feedback " << arg << "\n";
        } else {
          std::cout << "usage: \\feedback <on|off>\n";
        }
      } else if (cmd == "parallel") {
        int n = std::atoi(arg.c_str());
        if (n >= 1) {
          db.set_parallelism(static_cast<size_t>(n));
          std::cout << "parallelism set to " << n << "\n";
        } else {
          std::cout << "usage: \\parallel <n >= 1>\n";
        }
      } else {
        std::cout << "unknown command; \\help\n";
      }
      continue;
    }

    // Accumulate SQL until a terminating semicolon.
    pending += line;
    pending += "\n";
    if (trimmed.back() != ';') continue;
    std::string sql;
    sql.swap(pending);

    Result<QueryResult> result = db.Execute(sql);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    if (result->schema.NumColumns() > 0 || !result->rows.empty()) {
      std::cout << result->ToString();
    } else {
      std::cout << "ok\n";
    }
  }
  return 0;
}
