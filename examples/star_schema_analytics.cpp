// Star-schema analytics: a small data-warehouse-style workload showing the
// optimizer handling a fact table with several dimensions — the scenario
// where join ordering matters most.
//
//   ./build/examples/star_schema_analytics
#include <iostream>

#include "engine/database.h"
#include "workload/generator.h"

using namespace relopt;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return result.MoveValue();
}
}  // namespace

int main() {
  Database db;

  // sales(fact) with customer / product / day dimensions.
  TableSpec sales;
  sales.name = "sales";
  sales.num_rows = 50000;
  sales.columns = {ColumnSpec::Serial("id"),
                   ColumnSpec::Uniform("customer_id", 0, 1999),
                   ColumnSpec::Uniform("product_id", 0, 499),
                   ColumnSpec::Uniform("day_id", 0, 364),
                   ColumnSpec::Uniform("quantity", 1, 10),
                   ColumnSpec::Uniform("price_cents", 100, 99999)};
  Check(GenerateTable(&db, sales));

  TableSpec customers;
  customers.name = "customers";
  customers.num_rows = 2000;
  customers.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("segment", 0, 4),
                       ColumnSpec::Uniform("country", 0, 19)};
  customers.seed = 2;
  Check(GenerateTable(&db, customers));

  TableSpec products;
  products.name = "products";
  products.num_rows = 500;
  products.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("category", 0, 24)};
  products.seed = 3;
  Check(GenerateTable(&db, products));

  TableSpec days;
  days.name = "days";
  days.num_rows = 365;
  days.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("month", 1, 12)};
  days.seed = 4;
  Check(GenerateTable(&db, days));

  Check(db.Execute("CREATE INDEX idx_cust ON customers (id)").status());
  Check(db.Execute("CREATE INDEX idx_prod ON products (id)").status());

  const std::string query =
      "SELECT products.category, count(*) AS n, sum(sales.quantity) AS units "
      "FROM sales, customers, products, days "
      "WHERE sales.customer_id = customers.id "
      "  AND sales.product_id = products.id "
      "  AND sales.day_id = days.id "
      "  AND customers.segment = 2 "
      "  AND days.month = 6 "
      "GROUP BY products.category "
      "ORDER BY units DESC LIMIT 10";

  std::cout << "=== optimizer's plan (4-way star join, two selective dimensions) ===\n"
            << Unwrap(db.Explain(query)) << "\n";

  QueryResult result = Unwrap(db.Execute(query));
  std::cout << "=== top categories in June for segment 2 ===\n" << result.ToString();

  const ExecutionMetrics& m = db.last_metrics();
  std::cout << "\nexecution: " << m.tuples_processed << " tuples processed, "
            << m.pool.hits + m.pool.misses << " page accesses, estimate was "
            << m.est_cost.Total() << " cost units\n";

  // Show what join ordering bought us: the same query through the naive
  // planner (FROM-order nested loops, WHERE on top).
  db.options().optimizer.naive = true;
  PhysicalPtr naive_plan = Unwrap(db.PlanQuery(query));
  std::cout << "\nnaive plan estimate (no optimization): " << naive_plan->est_cost().Total()
            << " cost units -- " << naive_plan->est_cost().Total() / m.est_cost.Total()
            << "x the optimized estimate\n";
  return 0;
}
