#!/usr/bin/env bash
# Builds and tests three configurations: the default RelWithDebInfo build, an
# ASAN+UBSan build, and a TSan build running the concurrency tests. Run from
# the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== default build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== asan+ubsan build =="
cmake -B build-asan -S . -DASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== bench_vectorized smoke (asan) =="
# Tiny row count: exercises the batch pipeline (scan/filter/project/join/
# limit, plus the vectorized+parallel composition) under ASAN, and the
# RELOPT_BENCH_JSON_DIR dump paths, without benchmark-scale runtime.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_vectorized 2000

echo "== bench_expr smoke (asan) =="
# Tiny row count: drives the compiled batch expression engine (arithmetic,
# CASE, OR-chains, NULL/string functions, expression sort and group keys)
# under ASAN. The binary itself asserts zero fallback rows and identical
# page reads / result rows between row and batch modes.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_expr 2000

echo "== bench_aggregate smoke (asan) =="
# Tiny row count: exercises the partitioned hash aggregation matrix (grouped
# low/high cardinality + global, row/batch x parallelism 1/2/4) under ASAN.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_aggregate 2000

echo "== bench_serving smoke (asan) =="
# Tiny query count: drives the multi-session serving harness (1/2/4/8
# sessions, prepared + text modes, plan cache on vs off) under ASAN. The
# binary itself asserts zero errors, nonzero cache hits when enabled, and
# checksum equality between cache-on and cache-off runs.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_serving 20

echo "== metrics smoke (asan) =="
# Corpus attribution check: the global MetricsRegistry page-I/O counters must
# match the per-statement deltas and the summed EXPLAIN ANALYZE attribution
# across the differential corpus, row/batch x parallelism 1/2/4/8.
./build-asan/tests/relopt_tests \
  --gtest_filter='*IntrospectionMatrixTest*:IntrospectionTest.*'

echo "== feedback smoke (asan) =="
# Cardinality-feedback loop under ASAN: store semantics, harvest/override
# round trips, plan-cache re-optimization, and the feedback-on-vs-off
# differential corpus (results may never change, only plans).
./build-asan/tests/relopt_tests --gtest_filter='*Feedback*'

echo "== bench_feedback smoke (asan) =="
# Tiny row count: drives all four cardinality arms (nostats / estimates /
# feedback x1 / converged) and asserts identical results with the converged
# plan reading no more pages than the estimate-picked one.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_feedback 2000

echo "== bench_join_order smoke (asan) =="
# Shrunk sweeps: DPccp vs DP-bushy cost parity on every topology, the chain
# scaling comparison, and the clique budget-fallback ladder. The binary
# itself asserts cost equality and the expected ladder strategies.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-asan/bench/bench_join_order smoke

echo "== tsan build (concurrency tests) =="
cmake -B build-tsan -S . -DRELOPT_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|BufferPoolStress|ParallelDifferential|Vectorized|Aggregate|Metrics|QueryHistory|Introspection|LoggingConcurrency|PlanCache|PreparedStatement|SessionConcurrency|SessionHistory|Feedback'

echo "== metrics smoke (tsan) =="
# Same attribution check with instrumented atomics: counter updates come from
# Gather worker threads, so the agreement also proves quiesce-before-capture.
./build-tsan/tests/relopt_tests \
  --gtest_filter='*IntrospectionMatrixTest*:*LoggingConcurrencyTest*'

echo "== bench_vectorized smoke (tsan) =="
# The par2 block drives whole batches through Gather worker threads; TSan
# checks the batch hand-off and the PageCursor shared-latch discipline.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_vectorized 2000

echo "== bench_expr smoke (tsan) =="
# The expression corpus under instrumented atomics: compiled kernels feed the
# fallback metric counter from worker-adjacent code paths.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_expr 2000

echo "== bench_aggregate smoke (tsan) =="
# Parallel rows accumulate into per-worker partitions and merge across the
# barrier; TSan checks the shared-state hand-off and the disjoint merge/emit.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_aggregate 2000

echo "== bench_serving smoke (tsan) =="
# Up to 8 sessions hammer the shared plan cache, statement lock, and query
# history concurrently; TSan checks every cross-session hand-off.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_serving 20

echo "== bench_feedback smoke (tsan) =="
# The shared FeedbackStore takes concurrent record/lookup traffic from the
# harvest and optimize paths; TSan checks the store's locking discipline.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_feedback 2000

echo "== bench_join_order smoke (tsan) =="
# The enumeration is single-threaded; this run covers the metrics-export
# atomics the optimizer feeds after each planned statement.
RELOPT_BENCH_JSON_DIR="$(mktemp -d)" ./build-tsan/bench/bench_join_order smoke

echo "All checks passed."
