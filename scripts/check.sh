#!/usr/bin/env bash
# Builds and tests both configurations: the default RelWithDebInfo build and
# an ASAN+UBSan build. Run from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== default build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== asan+ubsan build =="
cmake -B build-asan -S . -DASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "All checks passed."
