# Empty compiler generated dependencies file for bench_interesting_orders.
# This may be replaced when dependencies are built.
