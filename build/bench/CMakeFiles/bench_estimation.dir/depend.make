# Empty dependencies file for bench_estimation.
# This may be replaced when dependencies are built.
