file(REMOVE_RECURSE
  "CMakeFiles/bench_estimation.dir/bench_estimation.cc.o"
  "CMakeFiles/bench_estimation.dir/bench_estimation.cc.o.d"
  "bench_estimation"
  "bench_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
