file(REMOVE_RECURSE
  "CMakeFiles/bench_enum_cost.dir/bench_enum_cost.cc.o"
  "CMakeFiles/bench_enum_cost.dir/bench_enum_cost.cc.o.d"
  "bench_enum_cost"
  "bench_enum_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enum_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
