# Empty dependencies file for bench_enum_cost.
# This may be replaced when dependencies are built.
