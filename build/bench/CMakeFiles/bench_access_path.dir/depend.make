# Empty dependencies file for bench_access_path.
# This may be replaced when dependencies are built.
