file(REMOVE_RECURSE
  "CMakeFiles/bench_access_path.dir/bench_access_path.cc.o"
  "CMakeFiles/bench_access_path.dir/bench_access_path.cc.o.d"
  "bench_access_path"
  "bench_access_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
