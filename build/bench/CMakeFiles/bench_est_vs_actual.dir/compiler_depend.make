# Empty compiler generated dependencies file for bench_est_vs_actual.
# This may be replaced when dependencies are built.
