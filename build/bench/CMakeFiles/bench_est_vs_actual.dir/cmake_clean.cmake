file(REMOVE_RECURSE
  "CMakeFiles/bench_est_vs_actual.dir/bench_est_vs_actual.cc.o"
  "CMakeFiles/bench_est_vs_actual.dir/bench_est_vs_actual.cc.o.d"
  "bench_est_vs_actual"
  "bench_est_vs_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_est_vs_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
