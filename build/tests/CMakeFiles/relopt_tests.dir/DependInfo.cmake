
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/access_path_test.cc" "tests/CMakeFiles/relopt_tests.dir/access_path_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/access_path_test.cc.o.d"
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/relopt_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/binder_test.cc" "tests/CMakeFiles/relopt_tests.dir/binder_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/binder_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/relopt_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/relopt_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/relopt_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/relopt_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/relopt_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/expression_test.cc" "tests/CMakeFiles/relopt_tests.dir/expression_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/expression_test.cc.o.d"
  "/root/repo/tests/fold_test.cc" "tests/CMakeFiles/relopt_tests.dir/fold_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/fold_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/relopt_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/join_enum_test.cc" "tests/CMakeFiles/relopt_tests.dir/join_enum_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/join_enum_test.cc.o.d"
  "/root/repo/tests/join_exec_test.cc" "tests/CMakeFiles/relopt_tests.dir/join_exec_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/join_exec_test.cc.o.d"
  "/root/repo/tests/join_graph_test.cc" "tests/CMakeFiles/relopt_tests.dir/join_graph_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/join_graph_test.cc.o.d"
  "/root/repo/tests/key_codec_test.cc" "tests/CMakeFiles/relopt_tests.dir/key_codec_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/key_codec_test.cc.o.d"
  "/root/repo/tests/lexer_test.cc" "tests/CMakeFiles/relopt_tests.dir/lexer_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/lexer_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/relopt_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/relopt_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/relopt_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rewriter_test.cc" "tests/CMakeFiles/relopt_tests.dir/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/rewriter_test.cc.o.d"
  "/root/repo/tests/selectivity_test.cc" "tests/CMakeFiles/relopt_tests.dir/selectivity_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/selectivity_test.cc.o.d"
  "/root/repo/tests/sort_exec_test.cc" "tests/CMakeFiles/relopt_tests.dir/sort_exec_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/sort_exec_test.cc.o.d"
  "/root/repo/tests/sql_end_to_end_test.cc" "tests/CMakeFiles/relopt_tests.dir/sql_end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/sql_end_to_end_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/relopt_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/relopt_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/types_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/relopt_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/relopt_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/relopt_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/relopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
