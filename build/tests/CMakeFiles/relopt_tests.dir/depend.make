# Empty dependencies file for relopt_tests.
# This may be replaced when dependencies are built.
