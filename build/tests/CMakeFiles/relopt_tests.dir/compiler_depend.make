# Empty compiler generated dependencies file for relopt_tests.
# This may be replaced when dependencies are built.
