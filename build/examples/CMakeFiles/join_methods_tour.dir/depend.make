# Empty dependencies file for join_methods_tour.
# This may be replaced when dependencies are built.
