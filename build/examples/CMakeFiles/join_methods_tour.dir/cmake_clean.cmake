file(REMOVE_RECURSE
  "CMakeFiles/join_methods_tour.dir/join_methods_tour.cpp.o"
  "CMakeFiles/join_methods_tour.dir/join_methods_tour.cpp.o.d"
  "join_methods_tour"
  "join_methods_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_methods_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
