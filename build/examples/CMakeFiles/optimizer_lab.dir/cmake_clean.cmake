file(REMOVE_RECURSE
  "CMakeFiles/optimizer_lab.dir/optimizer_lab.cpp.o"
  "CMakeFiles/optimizer_lab.dir/optimizer_lab.cpp.o.d"
  "optimizer_lab"
  "optimizer_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
