# Empty dependencies file for relopt.
# This may be replaced when dependencies are built.
