file(REMOVE_RECURSE
  "librelopt.a"
)
