
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/relopt.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/relopt.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/histogram.cc" "src/CMakeFiles/relopt.dir/catalog/histogram.cc.o" "gcc" "src/CMakeFiles/relopt.dir/catalog/histogram.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/relopt.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/relopt.dir/catalog/statistics.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/relopt.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/relopt.dir/engine/database.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/relopt.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/block_nested_loop_join.cc" "src/CMakeFiles/relopt.dir/exec/block_nested_loop_join.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/block_nested_loop_join.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/relopt.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/executor_factory.cc" "src/CMakeFiles/relopt.dir/exec/executor_factory.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/executor_factory.cc.o.d"
  "/root/repo/src/exec/external_sort.cc" "src/CMakeFiles/relopt.dir/exec/external_sort.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/external_sort.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/relopt.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/relopt.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/index_nested_loop_join.cc" "src/CMakeFiles/relopt.dir/exec/index_nested_loop_join.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/index_nested_loop_join.cc.o.d"
  "/root/repo/src/exec/index_scan.cc" "src/CMakeFiles/relopt.dir/exec/index_scan.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/index_scan.cc.o.d"
  "/root/repo/src/exec/limit.cc" "src/CMakeFiles/relopt.dir/exec/limit.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/limit.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/CMakeFiles/relopt.dir/exec/materialize.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/materialize.cc.o.d"
  "/root/repo/src/exec/nested_loop_join.cc" "src/CMakeFiles/relopt.dir/exec/nested_loop_join.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/nested_loop_join.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/relopt.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/seq_scan.cc" "src/CMakeFiles/relopt.dir/exec/seq_scan.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/seq_scan.cc.o.d"
  "/root/repo/src/exec/sort_merge_join.cc" "src/CMakeFiles/relopt.dir/exec/sort_merge_join.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/sort_merge_join.cc.o.d"
  "/root/repo/src/exec/values_exec.cc" "src/CMakeFiles/relopt.dir/exec/values_exec.cc.o" "gcc" "src/CMakeFiles/relopt.dir/exec/values_exec.cc.o.d"
  "/root/repo/src/expr/binder.cc" "src/CMakeFiles/relopt.dir/expr/binder.cc.o" "gcc" "src/CMakeFiles/relopt.dir/expr/binder.cc.o.d"
  "/root/repo/src/expr/conjuncts.cc" "src/CMakeFiles/relopt.dir/expr/conjuncts.cc.o" "gcc" "src/CMakeFiles/relopt.dir/expr/conjuncts.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/relopt.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/relopt.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/fold.cc" "src/CMakeFiles/relopt.dir/expr/fold.cc.o" "gcc" "src/CMakeFiles/relopt.dir/expr/fold.cc.o.d"
  "/root/repo/src/optimizer/access_path.cc" "src/CMakeFiles/relopt.dir/optimizer/access_path.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/access_path.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/relopt.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/join_enum.cc" "src/CMakeFiles/relopt.dir/optimizer/join_enum.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/join_enum.cc.o.d"
  "/root/repo/src/optimizer/join_graph.cc" "src/CMakeFiles/relopt.dir/optimizer/join_graph.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/join_graph.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/relopt.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rewriter.cc" "src/CMakeFiles/relopt.dir/optimizer/rewriter.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/rewriter.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/CMakeFiles/relopt.dir/optimizer/selectivity.cc.o" "gcc" "src/CMakeFiles/relopt.dir/optimizer/selectivity.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/relopt.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/relopt.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/relopt.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/relopt.dir/parser/parser.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/relopt.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/relopt.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/physical_plan.cc" "src/CMakeFiles/relopt.dir/plan/physical_plan.cc.o" "gcc" "src/CMakeFiles/relopt.dir/plan/physical_plan.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/relopt.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/relopt.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/relopt.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/relopt.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/relopt.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/relopt.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/relopt.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/relopt.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/relopt.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/relopt.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/types/key_codec.cc" "src/CMakeFiles/relopt.dir/types/key_codec.cc.o" "gcc" "src/CMakeFiles/relopt.dir/types/key_codec.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/relopt.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/relopt.dir/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "src/CMakeFiles/relopt.dir/types/tuple.cc.o" "gcc" "src/CMakeFiles/relopt.dir/types/tuple.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/relopt.dir/types/type.cc.o" "gcc" "src/CMakeFiles/relopt.dir/types/type.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/relopt.dir/types/value.cc.o" "gcc" "src/CMakeFiles/relopt.dir/types/value.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/relopt.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/relopt.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/relopt.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/relopt.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/relopt.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/relopt.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/relopt.dir/util/status.cc.o" "gcc" "src/CMakeFiles/relopt.dir/util/status.cc.o.d"
  "/root/repo/src/util/str_util.cc" "src/CMakeFiles/relopt.dir/util/str_util.cc.o" "gcc" "src/CMakeFiles/relopt.dir/util/str_util.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/relopt.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/relopt.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/relopt.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/relopt.dir/workload/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
