// T10 — Cardinality feedback: what is bad cardinality information worth, and
// how much of it does closing the feedback loop buy back?
//
// A triple-correlated filter (a = b = c, so independence underestimates the
// conjunction by 25x) feeding a join against a table wider than the buffer
// pool. Four arms on the same query:
//   nostats     — magic-constant selectivities (no statistics consulted)
//   estimates   — fresh histograms, independence assumption (the default)
//   feedback x1 — one prior execution harvested into the feedback store
//   converged   — re-run until the store version stabilizes: the optimizer
//                 now plans with true cardinalities (the LEO end state)
// Expected shape: the estimate arms pick an index-nested-loop join off the
// 25x-underestimated outer; feedback flips it to a plan that is strictly
// cheaper in measured page I/O. Results must be identical in every arm.
//
// The optional argv[1] overrides the fact row count (tiny values = CI smoke).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

void LoadCorrelated(Database* db, size_t fact_rows) {
  CheckOk(db->Execute("CREATE TABLE fact (a INT, b INT, c INT, k INT)").status());
  const size_t kChunk = 1000;
  for (size_t base = 0; base < fact_rows; base += kChunk) {
    std::string insert = "INSERT INTO fact VALUES ";
    const size_t end = std::min(base + kChunk, fact_rows);
    for (size_t i = base; i < end; ++i) {
      if (i > base) insert += ", ";
      const std::string v = std::to_string(i % 100);
      insert += "(" + v + ", " + v + ", " + v + ", " +
                std::to_string((i * 7919) % fact_rows) + ")";
    }
    CheckOk(db->Execute(insert).status());
  }
  // The probe side: wider than the buffer pool, with an index the estimate
  // arms will be tempted into probing once per (underestimated) outer row.
  TableSpec big;
  big.name = "big";
  big.num_rows = fact_rows;
  ColumnSpec pad;
  pad.name = "pad";
  pad.type = TypeId::kString;
  pad.dist = ColumnDist::kRandomString;
  pad.string_length = 100;
  big.columns = {ColumnSpec::Serial("id"), pad};
  big.sort_by = "id";
  CheckOk(GenerateTable(db, big));
  CheckOk(db->Execute("CREATE INDEX big_id ON big (id)").status());
  CheckOk(db->Execute("ANALYZE").status());
}

}  // namespace

int main(int argc, char** argv) {
  size_t fact_rows = 20000;
  if (argc > 1) fact_rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  std::printf("T10: cardinality feedback on a correlated-filter join (%zu fact rows).\n"
              "a = b = c, so independence underestimates the filter 25x.\n\n",
              fact_rows);

  const std::string query =
      "SELECT count(*) FROM fact, big "
      "WHERE fact.k = big.id AND fact.a < 20 AND fact.b < 20 AND fact.c < 20";

  SessionOptions options;
  options.buffer_pool_pages = 256;
  Database db(options);
  LoadCorrelated(&db, fact_rows);

  TablePrinter table({"arm", "est_rows", "rows", "rows_q", "reads", "ms", "plan_root"});
  auto row_of = [&](const char* arm, const Measured& m) {
    const std::string root = m.plan.substr(0, m.plan.find('\n'));
    table.AddRow({arm, F(m.est_rows, 0), FInt(m.rows),
                  F(QError(m.est_rows, static_cast<double>(m.rows)), 1), FInt(m.actual_reads),
                  F(m.millis, 1), root});
  };

  // Arm 1: no statistics at all.
  db.options().optimizer.stats_mode = StatsMode::kNoStats;
  Measured nostats = RunMeasured(&db, query);
  row_of("nostats", nostats);
  MaybeDumpProfile(nostats, "feedback_nostats");

  // Arm 2: fresh histograms, independence assumption.
  db.options().optimizer.stats_mode = StatsMode::kHistogram;
  Measured estimates = RunMeasured(&db, query);
  row_of("estimates", estimates);
  MaybeDumpProfile(estimates, "feedback_estimates");

  // Arm 3: one harvested execution feeding the next optimization.
  db.set_cardinality_feedback(true);
  CheckOk(db.Execute(query).status());  // harvest pass
  Measured once = RunMeasured(&db, query);
  row_of("feedback x1", once);
  MaybeDumpProfile(once, "feedback_once");

  // Arm 4: converged — re-run until a pass no longer changes the store.
  for (int pass = 0; pass < 5; ++pass) {
    const uint64_t before = db.feedback()->version();
    CheckOk(db.Execute(query).status());
    if (db.feedback()->version() == before) break;
  }
  Measured converged = RunMeasured(&db, query);
  row_of("converged", converged);
  MaybeDumpProfile(converged, "feedback_converged");
  MaybeDumpMetricsSnapshot();

  table.Print();
  std::printf("\nfeedback store: %zu entries, version %llu\n", db.feedback()->size(),
              static_cast<unsigned long long>(db.feedback()->version()));

  // Feedback may only change plans, never results.
  if (estimates.rows != nostats.rows || once.rows != estimates.rows ||
      converged.rows != estimates.rows) {
    std::fprintf(stderr, "FAIL: result rows differ across arms\n");
    return 1;
  }
  // The converged plan must not read more pages than the estimate-picked one.
  if (converged.actual_reads > estimates.actual_reads) {
    std::fprintf(stderr, "FAIL: converged feedback plan reads more pages (%llu > %llu)\n",
                 static_cast<unsigned long long>(converged.actual_reads),
                 static_cast<unsigned long long>(estimates.actual_reads));
    return 1;
  }
  std::printf("feedback plan page reads: %llu vs estimate plan %llu\n",
              static_cast<unsigned long long>(converged.actual_reads),
              static_cast<unsigned long long>(estimates.actual_reads));
  return 0;
}
