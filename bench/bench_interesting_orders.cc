// F3 — Interesting orders: sort avoidance through order-aware enumeration.
//
// A join whose result must be ORDER BY'd on a join key, with a clustered
// index supplying that order. With interesting orders ON the DP keeps the
// ordered (index-scan + merge-join) candidate and drops the final Sort; with
// them OFF it picks the raw-cheapest join and pays an explicit sort.
// Expected shape: the ON plans contain no Sort node on the ORDER BY column
// and win whenever the sort would spill.
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {
int CountSorts(const PhysicalNode& node) {
  int n = node.kind() == PhysicalNodeKind::kSort ? 1 : 0;
  for (const PhysicalPtr& child : node.children()) n += CountSorts(*child);
  return n;
}
}  // namespace

int main() {
  std::printf("F3: interesting orders -- ORDER BY on an indexed join key.\n"
              "sorts = Sort nodes in the final plan (0 means the order came free).\n\n");

  TablePrinter table({"query", "interesting_orders", "sorts", "est_cost", "reads", "writes",
                      "ms"});

  for (uint64_t rows : {20000, 60000}) {
    SessionOptions options;
    options.buffer_pool_pages = 64;  // small enough that big sorts spill
    Database db(options);

    TableSpec t;
    t.name = "t";
    t.num_rows = rows;
    t.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("v", 0, 999),
                 ColumnSpec::Uniform("pad", 0, 1000000)};
    t.sort_by = "id";
    CheckOk(GenerateTable(&db, t));
    CheckOk(db.catalog()->CreateIndex("idx_t_id", "t", {"id"}, true).status());

    // u as large as t: the join result is big, so the avoided final sort
    // would spill.
    TableSpec u;
    u.name = "u";
    u.num_rows = rows;
    u.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("fk", 0,
                                                               static_cast<int64_t>(rows) - 1),
                 ColumnSpec::Uniform("pad", 0, 1000000)};
    u.seed = 3;
    CheckOk(GenerateTable(&db, u));
    CheckOk(db.catalog()->CreateIndex("idx_u_fk", "u", {"fk"}, false).status());

    const std::string query =
        "SELECT t.id, t.v, u.pad FROM t, u WHERE t.id = u.fk ORDER BY t.id";
    std::string label = "join+orderby(" + std::to_string(rows) + ")";

    for (bool io_on : {true, false}) {
      db.options().optimizer.join.use_interesting_orders = io_on;
      PhysicalPtr plan = Unwrap(db.PlanQuery(query));
      Measured m = RunPlanMeasured(&db, *plan);
      table.AddRow({label, io_on ? "on" : "off", FInt(CountSorts(*plan)), F(m.est_total_cost),
                    FInt(m.actual_reads), FInt(m.actual_writes), F(m.millis, 1)});
    }

    // Single-table variant: ORDER BY over a selective range.
    const std::string single = "SELECT id FROM t WHERE id < " +
                               std::to_string(rows / 2) + " ORDER BY id";
    std::string label2 = "scan+orderby(" + std::to_string(rows) + ")";
    for (bool io_on : {true, false}) {
      db.options().optimizer.join.use_interesting_orders = io_on;
      PhysicalPtr plan = Unwrap(db.PlanQuery(single));
      Measured m = RunPlanMeasured(&db, *plan);
      table.AddRow({label2, io_on ? "on" : "off", FInt(CountSorts(*plan)), F(m.est_total_cost),
                    FInt(m.actual_reads), FInt(m.actual_writes), F(m.millis, 1)});
    }
  }
  table.Print();
  return 0;
}
