// F2 — Buffer size and join-method choice.
//
// The same R ⋈ S join planned and executed under buffer pools from 16 to
// 1024 pages. Expected shape: with little memory the hash join spills
// (Grace) and BNLJ needs many inner passes; as memory grows the build side
// fits, spill I/O disappears, and measured I/O for the optimizer's plan
// steps down toward P_R + P_S. The method choice may flip across the sweep —
// the buffer-aware half of the cost model.
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

std::string MethodOf(const PhysicalNode& node) {
  switch (node.kind()) {
    case PhysicalNodeKind::kNestedLoopJoin:
      return "nlj";
    case PhysicalNodeKind::kBlockNestedLoopJoin:
      return "bnlj";
    case PhysicalNodeKind::kIndexNestedLoopJoin:
      return "inlj";
    case PhysicalNodeKind::kSortMergeJoin:
      return "smj";
    case PhysicalNodeKind::kHashJoin:
      return "hash";
    default:
      for (const PhysicalPtr& child : node.children()) {
        std::string m = MethodOf(*child);
        if (!m.empty()) return m;
      }
      return "";
  }
}

}  // namespace

int main() {
  std::printf("F2: buffer-size sweep -- 30k x 30k equi-join, pool from 16 to 1024 pages.\n"
              "writes > 0 indicates spilling (Grace partitions / sort runs).\n\n");

  TablePrinter table({"buffer_pages", "chosen_method", "est_cost", "est_io", "reads", "writes",
                      "ms"});

  for (size_t pages : {16, 32, 64, 128, 256, 512, 1024}) {
    SessionOptions options;
    options.buffer_pool_pages = pages;
    Database db(options);

    TableSpec r;
    r.name = "r";
    r.num_rows = 30000;
    r.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 4999),
                 ColumnSpec::Uniform("pad", 0, 1000000)};
    CheckOk(GenerateTable(&db, r));
    TableSpec s = r;
    s.name = "s";
    s.seed = 99;
    CheckOk(GenerateTable(&db, s));

    const std::string query = "SELECT count(*) FROM r, s WHERE r.k = s.k";
    PhysicalPtr plan = Unwrap(db.PlanQuery(query));
    Measured m = RunPlanMeasured(&db, *plan);
    table.AddRow({FInt(pages), MethodOf(*plan), F(m.est_total_cost), F(m.est_io),
                  FInt(m.actual_reads), FInt(m.actual_writes), F(m.millis, 1)});
  }
  table.Print();
  return 0;
}
