// Microbenchmarks of engine primitives (google-benchmark).
//
// These are not paper experiments — they time the substrate the experiments
// stand on (key encoding, tuple serialization, B+tree ops, buffer pool,
// executor throughput) so performance regressions in the engine itself are
// visible independently of plan choices.
#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "exec/executor_factory.h"
#include "storage/btree.h"
#include "types/key_codec.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/queries.h"

namespace relopt {
namespace {

// ---------------------------------------------------------------- codecs --

void BM_EncodeIntKey(benchmark::State& state) {
  Rng rng(1);
  std::vector<Value> values;
  for (int i = 0; i < 1024; ++i) values.push_back(Value::Int(rng.UniformInt(-1e9, 1e9)));
  size_t i = 0;
  for (auto _ : state) {
    std::string out;
    EncodeKeyValue(values[i++ & 1023], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeIntKey);

void BM_EncodeCompositeKey(benchmark::State& state) {
  std::vector<Value> key = {Value::Int(42), Value::String("hello world"), Value::Double(3.5)};
  for (auto _ : state) {
    std::string out = EncodeKey(key);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeCompositeKey);

void BM_TupleSerializeRoundTrip(benchmark::State& state) {
  Tuple t({Value::Int(7), Value::String("some text payload"), Value::Double(2.25),
           Value::Null(TypeId::kInt64)});
  for (auto _ : state) {
    std::string bytes = t.Serialize();
    auto back = Tuple::Deserialize(bytes, 4);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TupleSerializeRoundTrip);

// ----------------------------------------------------------------- btree --

void BM_BTreeInsert(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  BTree tree = *BTree::Create(&pool);
  Rng rng(2);
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = EncodeKey({Value::Int(rng.UniformInt(0, 1 << 20))});
    benchmark::DoNotOptimize(tree.Insert(key, Rid{static_cast<PageNo>(i++), 0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreePointLookup(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  BTree tree = *BTree::Create(&pool);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)tree.Insert(EncodeKey({Value::Int(i)}), Rid{static_cast<PageNo>(i), 0});
  }
  Rng rng(3);
  for (auto _ : state) {
    auto rids = tree.SearchEqual(EncodeKey({Value::Int(rng.UniformInt(0, n - 1))}));
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup)->Arg(1000)->Arg(100000);

// ------------------------------------------------------------ buffer pool --

void BM_BufferPoolHit(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  FileId f = disk.CreateFile();
  PageId pid = (*pool.NewPage(f))->page_id();
  (void)pool.UnpinPage(pid, true);
  for (auto _ : state) {
    PageFrame* frame = *pool.FetchPage(pid);
    benchmark::DoNotOptimize(frame);
    (void)pool.UnpinPage(pid, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

// -------------------------------------------------------------- executors --

/// End-to-end SELECT throughput: full scan + filter + aggregate over 50k
/// rows, hot cache.
void BM_ScanFilterAggregate(benchmark::State& state) {
  Database db;
  TableSpec t;
  t.name = "t";
  t.num_rows = 50000;
  t.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 99)};
  if (!GenerateTable(&db, t).ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  PhysicalPtr plan = db.PlanQuery("SELECT count(*) FROM t WHERE k < 50").MoveValue();
  for (auto _ : state) {
    auto result = db.ExecutePlan(*plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_ScanFilterAggregate);

/// Hash-join throughput, 20k x 20k, hot cache.
void BM_HashJoinThroughput(benchmark::State& state) {
  Database db;
  TableSpec r;
  r.name = "r";
  r.num_rows = 20000;
  r.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 999)};
  TableSpec s = r;
  s.name = "s";
  s.seed = 9;
  if (!GenerateTable(&db, r).ok() || !GenerateTable(&db, s).ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  PhysicalPtr plan = db.PlanQuery("SELECT count(*) FROM r, s WHERE r.k = s.k").MoveValue();
  for (auto _ : state) {
    auto result = db.ExecutePlan(*plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 40000);
}
BENCHMARK(BM_HashJoinThroughput);

/// Optimization latency for a 6-relation chain (plan only).
void BM_OptimizeChain6(benchmark::State& state) {
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = 6;
  spec.base_rows = 100;
  Result<std::string> q = BuildChainWorkload(&db, spec);
  if (!q.ok()) {
    state.SkipWithError("workload failed");
    return;
  }
  for (auto _ : state) {
    auto plan = db.PlanQuery(*q);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeChain6);

/// SQL parse + bind latency.
void BM_ParseAndBind(benchmark::State& state) {
  Database db;
  (void)db.Execute("CREATE TABLE t (a INT, b TEXT, c DOUBLE)").status();
  const std::string sql =
      "SELECT a, count(*), sum(c) FROM t WHERE a > 5 AND b = 'x' OR c BETWEEN 1 AND 2 "
      "GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 10";
  for (auto _ : state) {
    auto plan = db.BindQuery(sql);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseAndBind);

}  // namespace
}  // namespace relopt

BENCHMARK_MAIN();
