// T1 — Join-method evaluation (Blasgen–Eswaran-style grid).
//
// For R(outer) ⋈ S(inner) over a grid of relation sizes, runs every join
// method and reports estimated cost vs measured page I/O and tuples. The
// expected shape: NLJ loses except for tiny inputs; INLJ wins when the outer
// is small and S has an index; hash wins large-x-large when the build fits;
// BNLJ tracks ceil(P_R/B)*P_S; SMJ pays its sorts but stays competitive.
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

/// One engine per (sizes) cell so table layouts are identical across methods.
struct Cell {
  std::unique_ptr<Database> db;
  std::string query;
};

Cell MakeCell(uint64_t r_rows, uint64_t s_rows) {
  SessionOptions options;
  options.buffer_pool_pages = 128;
  Cell cell;
  cell.db = std::make_unique<Database>(options);

  TableSpec r;
  r.name = "r";
  r.num_rows = r_rows;
  r.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 999),
               ColumnSpec::Uniform("pad", 0, 1000000)};
  CheckOk(GenerateTable(cell.db.get(), r));

  TableSpec s;
  s.name = "s";
  s.num_rows = s_rows;
  s.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 999),
               ColumnSpec::Uniform("pad", 0, 1000000)};
  s.seed = 77;
  CheckOk(GenerateTable(cell.db.get(), s));
  CheckOk(cell.db->catalog()->CreateIndex("idx_s_k", "s", {"k"}, false).status());

  cell.query = "SELECT count(*) FROM r, s WHERE r.k = s.k";
  return cell;
}

struct MethodConfig {
  const char* name;
  void (*apply)(JoinEnumOptions*);
};

void OnlyNlj(JoinEnumOptions* o) {
  o->enable_bnlj = o->enable_inlj = o->enable_smj = o->enable_hash = false;
}
void OnlyBnlj(JoinEnumOptions* o) {
  o->enable_nlj = o->enable_inlj = o->enable_smj = o->enable_hash = false;
}
void OnlyInlj(JoinEnumOptions* o) {
  o->enable_nlj = o->enable_bnlj = o->enable_smj = o->enable_hash = false;
}
void OnlySmj(JoinEnumOptions* o) {
  o->enable_nlj = o->enable_bnlj = o->enable_inlj = o->enable_hash = false;
}
void OnlyHash(JoinEnumOptions* o) {
  o->enable_nlj = o->enable_bnlj = o->enable_inlj = o->enable_smj = false;
}
void AllMethods(JoinEnumOptions*) {}

}  // namespace

int main() {
  std::printf("T1: join-method evaluation -- R join S on k (1000 distinct keys),\n"
              "buffer = 128 pages. est_cost = optimizer estimate; reads/writes = measured\n"
              "cold-cache page I/O. NLJ is estimate-only above 2M tuple comparisons.\n\n");

  const MethodConfig methods[] = {{"nlj", OnlyNlj},   {"bnlj", OnlyBnlj}, {"inlj", OnlyInlj},
                                  {"smj", OnlySmj},   {"hash", OnlyHash}, {"optimizer", AllMethods}};
  const uint64_t r_sizes[] = {100, 1000, 10000};
  const uint64_t s_sizes[] = {1000, 20000};

  TablePrinter table({"|R|", "|S|", "method", "est_cost", "est_io", "reads", "writes",
                      "tuples", "ms", "result"});

  for (uint64_t r_rows : r_sizes) {
    for (uint64_t s_rows : s_sizes) {
      Cell cell = MakeCell(r_rows, s_rows);
      for (const MethodConfig& method : methods) {
        Database* db = cell.db.get();
        db->options().optimizer.join = JoinEnumOptions{};
        method.apply(&db->options().optimizer.join);

        PhysicalPtr plan = Unwrap(db->PlanQuery(cell.query));
        double est_tuples = plan->est_cost().cpu_tuples;
        bool run_it = !(std::string(method.name) == "nlj" && est_tuples > 2e6);
        if (run_it) {
          Measured m = RunPlanMeasured(db, *plan);
          table.AddRow({FInt(r_rows), FInt(s_rows), method.name, F(m.est_total_cost),
                        F(m.est_io), FInt(m.actual_reads), FInt(m.actual_writes),
                        FInt(m.tuples), F(m.millis, 2), FInt(m.rows)});
        } else {
          table.AddRow({FInt(r_rows), FInt(s_rows), method.name,
                        F(plan->est_cost().Total()), F(plan->est_cost().page_ios), "-", "-",
                        "-", "-", "(est only)"});
        }
      }
    }
  }
  table.Print();

  std::printf("\nOptimizer's chosen method per cell (the 'optimizer' rows above show its\n"
              "cost; the winner should match the cheapest single-method row).\n");
  return 0;
}
