// T5 — Estimation error: no-stats magic constants vs System-R uniform
// assumption vs equi-depth histograms, on skewed data.
//
// Expected shape: on Zipf-skewed columns, histograms cut the q-error of
// equality predicates by an order of magnitude or more at the head of the
// distribution; on uniform columns all three modes are close. This is the
// ablation behind "keep distribution statistics, not just counts".
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

double QErrorHalfClamp(double est, double actual) {
  est = std::max(est, 0.5);
  actual = std::max(actual, 0.5);
  return std::max(est / actual, actual / est);
}

/// Root-of-join-block estimated rows for a query.
double EstimatedRows(Database* db, const std::string& sql) {
  PhysicalPtr plan = Unwrap(db->PlanQuery(sql));
  const PhysicalNode* node = plan.get();
  while (node->kind() == PhysicalNodeKind::kProject ||
         node->kind() == PhysicalNodeKind::kAggregate) {
    node = node->child(0);
  }
  return node->est_rows();
}

double ActualRows(Database* db, const std::string& sql) {
  QueryResult r = Unwrap(db->Execute(sql));
  return static_cast<double>(r.rows[0].At(0).AsInt());
}

}  // namespace

int main() {
  std::printf("T5: selectivity estimation error (q-error) by stats mode.\n"
              "zipf column: skew 1.1 over 200 values; uniform column for contrast.\n\n");

  Database db;
  TableSpec t;
  t.name = "t";
  t.num_rows = 50000;
  t.columns = {ColumnSpec::Serial("id"), ColumnSpec::Zipf("z", 200, 1.1),
               ColumnSpec::Uniform("u", 0, 199)};
  CheckOk(GenerateTable(&db, t));

  struct Case {
    const char* label;
    std::string predicate;
  };
  std::vector<Case> cases;
  for (int v : {1, 2, 5, 20, 100, 190}) {
    cases.push_back({"z =", "z = " + std::to_string(v)});
  }
  for (int v : {2, 10, 50, 150}) {
    cases.push_back({"z <", "z < " + std::to_string(v)});
  }
  for (int v : {1, 50, 150}) {
    cases.push_back({"u =", "u = " + std::to_string(v)});
  }
  cases.push_back({"u <", "u < 50"});

  const StatsMode modes[] = {StatsMode::kNoStats, StatsMode::kSystemR, StatsMode::kHistogram};

  TablePrinter table({"predicate", "actual", "nostats_est", "nostats_q", "systemr_est",
                      "systemr_q", "hist_est", "hist_q"});

  struct Agg {
    double sum_log_q = 0;
    double max_q = 0;
    int n = 0;
    void Add(double q) {
      sum_log_q += std::log(q);
      max_q = std::max(max_q, q);
      ++n;
    }
    double GeoMean() const { return std::exp(sum_log_q / std::max(n, 1)); }
  };
  Agg aggs[3];

  for (const Case& c : cases) {
    std::string sql = "SELECT count(*) FROM t WHERE " + c.predicate;
    double actual = ActualRows(&db, sql);
    std::vector<std::string> row = {c.predicate, F(actual, 0)};
    for (int mi = 0; mi < 3; ++mi) {
      db.options().optimizer.stats_mode = modes[mi];
      double est = EstimatedRows(&db, sql);
      double q = QErrorHalfClamp(est, actual);
      aggs[mi].Add(q);
      row.push_back(F(est, 0));
      row.push_back(F(q, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nsummary (geometric mean / max q-error):\n");
  const char* names[] = {"nostats", "systemr", "histogram"};
  for (int mi = 0; mi < 3; ++mi) {
    std::printf("  %-10s geo-mean q = %6.2f   max q = %8.2f\n", names[mi], aggs[mi].GeoMean(),
                aggs[mi].max_q);
  }
  return 0;
}
