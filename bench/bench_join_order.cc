// J1 — Graph-aware join enumeration: DPccp vs subset-DP on the generated
// join-order workload (chain/star/cycle/clique/random topologies).
//
// Three parts:
//   A. Plan quality: on every connected topology up to n=8, DPccp must find a
//      plan with exactly the same estimated cost as DP-bushy (both search the
//      full connected-bushy space; DPccp just never touches disconnected
//      subsets). Checked, not just printed.
//   B. Enumeration work: subsets visited / joins costed / wall time as n
//      grows. On a chain, DP-bushy walks all 2^n subsets while DPccp visits
//      only the ~n^2/2 connected ones — checked to be a >= 10x reduction at
//      n >= 12.
//   C. Budget ladder: a clique's csg-cmp pair count grows ~3^n, blowing the
//      default dp_budget around n=12; the optimizer must detect that and fall
//      back to greedy-GOO, still producing a plan (checked through n=20).
//
// Usage: bench_join_order [smoke]   -- "smoke" shrinks every sweep for CI.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common.h"
#include "workload/queries.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

// Equal-cost plans of different shapes sum their per-node costs in different
// orders, so totals can differ in the last few ulps; compare with a relative
// tolerance instead of bit equality.
bool CostsEqual(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

Database* NewDb() {
  SessionOptions options;
  options.buffer_pool_pages = 128;
  return new Database(options);
}

JoinWorkloadSpec SmallSpec(int n) {
  JoinWorkloadSpec spec;
  spec.num_relations = n;
  spec.base_rows = 50;  // enumeration work does not depend on data volume
  spec.growth = 1.6;
  spec.dim_rows = 20;
  return spec;
}

PlannedOnly PlanWith(Database* db, JoinEnumAlgorithm algorithm, const std::string& query) {
  db->options().optimizer.join.algorithm = algorithm;
  return PlanMeasured(db, query);
}

// Part A: DPccp's plan cost must equal DP-bushy's on every connected
// topology (and exhaustive where it is still feasible).
void PartQuality(bool smoke) {
  const int max_n = smoke ? 5 : 8;
  std::printf("\n== A. plan quality: DPccp vs DP-bushy vs exhaustive (cost parity) ==\n");
  const JoinTopology topologies[] = {JoinTopology::kChain, JoinTopology::kStar,
                                     JoinTopology::kCycle, JoinTopology::kClique,
                                     JoinTopology::kRandom};
  TablePrinter table({"topology", "n", "cost_dpccp", "cost_bushy", "cost_exhaustive", "equal"});
  for (JoinTopology topology : topologies) {
    const int min_n = topology == JoinTopology::kCycle ? 3 : 2;
    for (int n = min_n; n <= max_n; ++n) {
      Database* db = NewDb();
      std::string query = Unwrap(BuildJoinWorkload(db, topology, SmallSpec(n)));
      PlannedOnly ccp = PlanWith(db, JoinEnumAlgorithm::kDpCcp, query);
      PlannedOnly bushy = PlanWith(db, JoinEnumAlgorithm::kDpBushy, query);
      PlannedOnly ex = PlanWith(db, JoinEnumAlgorithm::kExhaustive, query);
      const bool equal = CostsEqual(ccp.est_total_cost, bushy.est_total_cost);
      table.AddRow({JoinTopologyToString(topology), FInt(n), F(ccp.est_total_cost),
                    F(bushy.est_total_cost), F(ex.est_total_cost), equal ? "yes" : "NO"});
      if (!equal) {
        std::fprintf(stderr, "mismatch: %s n=%d  dpccp=%.6f bushy=%.6f\n-- dpccp plan --\n%s\n"
                     "-- bushy plan --\n%s\n", JoinTopologyToString(topology), n,
                     ccp.est_total_cost, bushy.est_total_cost, ccp.plan.c_str(),
                     bushy.plan.c_str());
      }
      Require(equal, "DPccp cost == DP-bushy cost on a connected topology");
      Require(ccp.stats.strategy_used == JoinEnumAlgorithm::kDpCcp && !ccp.stats.budget_fallback,
              "DPccp stayed in budget on a small query");
      delete db;
    }
  }
  table.Print();
}

// Part B: enumeration work as n grows. The chain is the friendly case
// (~n^2/2 connected subsets vs all 2^n masks); the star shows the hub keeping
// 2^(n-1) subsets connected, so the win there is in joins costed.
void PartScaling(bool smoke) {
  std::printf("\n== B. enumeration work: subsets visited / joins costed vs n ==\n");
  struct Sweep {
    JoinTopology topology;
    int max_n;
    int bushy_max_n;
  };
  const Sweep sweeps[] = {{JoinTopology::kChain, smoke ? 10 : 16, 14},
                          {JoinTopology::kStar, smoke ? 10 : 14, 12}};
  for (const Sweep& sweep : sweeps) {
    std::printf("\n-- %s --\n", JoinTopologyToString(sweep.topology));
    TablePrinter table({"n", "algorithm", "subsets", "csg_cmp", "joins_costed", "plan_ms",
                        "est_cost"});
    for (int n = 8; n <= sweep.max_n; n += 2) {
      Database* db = NewDb();
      std::string query = Unwrap(BuildJoinWorkload(db, sweep.topology, SmallSpec(n)));
      PlannedOnly ccp = PlanWith(db, JoinEnumAlgorithm::kDpCcp, query);
      table.AddRow({FInt(n), "dpccp", FInt(ccp.stats.subsets_visited),
                    FInt(ccp.stats.csg_cmp_pairs), FInt(ccp.stats.joins_costed),
                    F(ccp.millis, 2), F(ccp.est_total_cost)});
      if (n <= sweep.bushy_max_n) {
        PlannedOnly bushy = PlanWith(db, JoinEnumAlgorithm::kDpBushy, query);
        table.AddRow({FInt(n), "dp-bushy", FInt(bushy.stats.subsets_visited), "-",
                      FInt(bushy.stats.joins_costed), F(bushy.millis, 2),
                      F(bushy.est_total_cost)});
        Require(CostsEqual(ccp.est_total_cost, bushy.est_total_cost),
                "DPccp cost == DP-bushy cost while scaling");
        if (sweep.topology == JoinTopology::kChain && n >= 12) {
          Require(bushy.stats.subsets_visited >= 10 * ccp.stats.subsets_visited,
                  "DPccp visits >= 10x fewer subsets than DP-bushy on a chain at n >= 12");
        }
      } else {
        table.AddRow({FInt(n), "dp-bushy", "(skipped)", "-", "-", "-", "-"});
      }
      delete db;
    }
    table.Print();
  }
}

// Part C: the budget ladder on cliques. csg-cmp pairs ~ (3^n)/2: n=10 fits
// the default 100k budget, n=12 and n=20 do not and must fall back to greedy
// while still planning successfully.
void PartBudget(bool smoke) {
  std::printf("\n== C. budget ladder on cliques (dp_budget = default) ==\n");
  TablePrinter table({"n", "strategy_used", "fallback", "csg_cmp", "plan_ms", "est_cost"});
  // Smoke skips n=10: in budget but ~30k csg-cmp pairs, too slow under ASAN.
  const std::vector<int> ns = smoke ? std::vector<int>{6, 8, 12} : std::vector<int>{8, 10, 12, 20};
  for (int n : ns) {
    Database* db = NewDb();
    JoinWorkloadSpec spec = SmallSpec(n);
    spec.growth = 1.2;  // keep table generation cheap at n=20
    std::string query = Unwrap(BuildJoinWorkload(db, JoinTopology::kClique, spec));
    PlannedOnly p = PlanWith(db, JoinEnumAlgorithm::kDpCcp, query);
    table.AddRow({FInt(n), JoinEnumAlgorithmToString(p.stats.strategy_used),
                  p.stats.budget_fallback ? "yes" : "no", FInt(p.stats.csg_cmp_pairs),
                  F(p.millis, 2), F(p.est_total_cost)});
    Require(p.est_total_cost > 0, "ladder produced a plan");
    if (n <= 10) {
      Require(p.stats.strategy_used == JoinEnumAlgorithm::kDpCcp && !p.stats.budget_fallback,
              "clique within budget planned by DPccp");
    } else {
      Require(p.stats.budget_fallback, "over-budget clique fell back");
    }
    delete db;
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  std::printf("J1: graph-aware join enumeration (DPccp) vs subset DP.\n"
              "subsets = DP masks visited (bushy) / csg-cmp union groups (dpccp);\n"
              "joins_costed = (left,right,method) combinations costed.%s\n",
              smoke ? "  [smoke]" : "");
  PartQuality(smoke);
  PartScaling(smoke);
  PartBudget(smoke);
  std::printf("\nall checks passed\n");
  return 0;
}
