// V1 — Vectorized (batch-at-a-time) execution vs row-at-a-time Volcano.
//
// Full-table scan/filter/project/join/limit queries over a ~200k-row table,
// executed row-at-a-time and with TupleBatch sizes 1/64/1024. Expected shape:
// batch 1024 amortizes the per-row iterator overhead (virtual Next, timer,
// I/O-attribution switches) and the per-row deserialize allocations, giving
// >=2x on scan+filter+project pipelines; batch 1 pays the batch machinery
// without amortizing anything and lands at or slightly below row mode. Page
// reads are identical across modes by construction (both pin one page at a
// time), which the `reads` column makes visible. The optional argv[1]
// overrides the row count (tiny values = sanitizer smoke runs).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct RunPoint {
  std::string query_label;
  std::string mode;  // "row", "batch1", ...
  size_t batch_size = 0;  // 0 = row mode
  double ms = 0;
  uint64_t reads = 0;
  uint64_t rows = 0;
  double speedup = 1.0;  // row_ms / ms
};

void DumpSummary(const std::vector<RunPoint>& points, size_t table_rows) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/vectorized_summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"table_rows\":%zu,\"points\":[", table_rows);
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(f,
                 "%s{\"query\":\"%s\",\"mode\":\"%s\",\"batch_size\":%zu,\"ms\":%.3f,"
                 "\"page_reads\":%llu,\"rows\":%llu,\"speedup_vs_row\":%.3f}",
                 i == 0 ? "" : ",", p.query_label.c_str(), p.mode.c_str(), p.batch_size, p.ms,
                 static_cast<unsigned long long>(p.reads),
                 static_cast<unsigned long long>(p.rows), p.speedup);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

Measured BestOf3(Database* db, const std::string& sql) {
  Measured best;
  for (int rep = 0; rep < 3; ++rep) {
    Measured m = RunMeasured(db, sql);
    if (rep == 0 || m.millis < best.millis) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t table_rows = 200000;
  if (argc > 1) table_rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  if (table_rows == 0) table_rows = 200000;

  std::printf(
      "V1: vectorized batch execution vs row-at-a-time -- %zu-row table,\n"
      "batch sizes 1/64/1024 vs the classic Volcano row loop. Identical page\n"
      "reads across modes; the speedup is pure per-row-overhead amortization.\n\n",
      table_rows);

  SessionOptions options;
  options.buffer_pool_pages = 512;
  Database db(options);

  TableSpec big;
  big.name = "big";
  big.num_rows = table_rows;
  big.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 999),
                 ColumnSpec::Uniform("pad", 0, 1000000)};
  CheckOk(GenerateTable(&db, big));

  TableSpec dim;
  dim.name = "dim";
  dim.num_rows = std::max<size_t>(1, std::min<size_t>(1000, table_rows / 10));
  dim.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("v", 0, 100)};
  dim.seed = 99;
  CheckOk(GenerateTable(&db, dim));

  struct QuerySpec {
    const char* label;
    std::string sql;
  };
  const QuerySpec kQueries[] = {
      {"scan_project", "SELECT id, k, pad FROM big"},
      {"scan_filter_project", "SELECT id, pad * 2 + 1 FROM big WHERE pad < 500000"},
      {"selective_filter", "SELECT id FROM big WHERE k < 100"},
      {"hash_join", "SELECT big.id, dim.v FROM big, dim WHERE big.k = dim.id"},
      {"limit", "SELECT id FROM big LIMIT " + std::to_string(std::min<size_t>(1000, table_rows))},
      // Expression-heavy section: deep trees through the compiled batch
      // expression engine (CASE, OR-chains, expression group keys). The
      // dedicated bench_expr binary covers the full expression corpus.
      {"expr_case_or",
       "SELECT id, CASE WHEN pad > 750000 THEN 3 WHEN pad > 500000 THEN 2 ELSE 1 END "
       "FROM big WHERE k < 200 OR k > 800 OR pad % 97 = 0"},
      {"expr_group_key", "SELECT k % 16, count(*), sum(pad) FROM big GROUP BY k % 16"},
  };
  const size_t kBatchSizes[] = {1, 64, 1024};

  std::vector<RunPoint> points;
  TablePrinter table({"query", "mode", "ms", "reads", "rows", "speedup_vs_row"});
  double headline_speedup = 0;  // scan_filter_project @ 1024

  for (const QuerySpec& q : kQueries) {
    db.set_vectorized(false);
    Measured row = BestOf3(&db, q.sql);
    RunPoint rp{q.label, "row", 0, row.millis, row.actual_reads, row.rows, 1.0};
    points.push_back(rp);
    table.AddRow({q.label, "row", F(row.millis, 2), FInt(row.actual_reads), FInt(row.rows),
                  F(1.0, 2)});
    MaybeDumpProfile(row, std::string("vectorized_") + q.label + "_row");

    db.set_vectorized(true);
    for (size_t bs : kBatchSizes) {
      db.set_batch_size(bs);
      Measured vec = BestOf3(&db, q.sql);
      double speedup = vec.millis > 0 ? row.millis / vec.millis : 0;
      std::string mode = "batch" + std::to_string(bs);
      points.push_back({q.label, mode, bs, vec.millis, vec.actual_reads, vec.rows, speedup});
      table.AddRow({q.label, mode, F(vec.millis, 2), FInt(vec.actual_reads), FInt(vec.rows),
                    F(speedup, 2)});
      if (std::string(q.label) == "scan_filter_project" && bs == 1024) {
        headline_speedup = speedup;
        MaybeDumpProfile(vec, "vectorized_scan_filter_project_batch1024");
      }
    }
    db.set_batch_size(TupleBatch::kDefaultCapacity);
  }

  // Vectorized + parallel composition: workers push whole batches through
  // the Gather. Absolute times on a single-hardware-thread host show the
  // parallel overhead, not a speedup; the point is that the modes compose.
  {
    const std::string sql = kQueries[1].sql;
    db.set_parallelism(2);
    db.set_vectorized(false);
    Measured row = BestOf3(&db, sql);
    points.push_back({"scan_filter_project_par2", "row", 0, row.millis, row.actual_reads,
                      row.rows, 1.0});
    table.AddRow({"scan_filter_project_par2", "row", F(row.millis, 2), FInt(row.actual_reads),
                  FInt(row.rows), F(1.0, 2)});
    db.set_vectorized(true);
    db.set_batch_size(1024);
    Measured vec = BestOf3(&db, sql);
    double speedup = vec.millis > 0 ? row.millis / vec.millis : 0;
    points.push_back({"scan_filter_project_par2", "batch1024", 1024, vec.millis,
                      vec.actual_reads, vec.rows, speedup});
    table.AddRow({"scan_filter_project_par2", "batch1024", F(vec.millis, 2),
                  FInt(vec.actual_reads), FInt(vec.rows), F(speedup, 2)});
    db.set_parallelism(1);
    db.set_batch_size(TupleBatch::kDefaultCapacity);
  }

  table.Print();
  std::printf("\nheadline: scan+filter+project @ batch 1024 is %.2fx row-at-a-time\n",
              headline_speedup);
  DumpSummary(points, table_rows);
  return 0;
}
