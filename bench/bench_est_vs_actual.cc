// T4 — Estimated vs actual: does the cost model's arithmetic track reality?
//
// For a mix of selections and joins on uniform data, compares the optimizer's
// row estimates against actual rows (q-error) and its page-I/O estimate
// against measured cold-cache reads+writes. Expected shape: on uniform data
// with fresh statistics, row q-errors stay near 1 and I/O estimates land
// within a small constant factor — the System-R sanity result that made
// cost-based optimization credible.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

int main() {
  std::printf("T4: estimated vs actual (uniform data, fresh ANALYZE).\n"
              "io_q = max(est/actual, actual/est) over page I/O; rows_q likewise.\n\n");

  SessionOptions options;
  options.buffer_pool_pages = 96;
  Database db(options);

  TableSpec orders;
  orders.name = "orders";
  orders.num_rows = 40000;
  orders.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("cust", 0, 1999),
                    ColumnSpec::Uniform("amount", 1, 10000),
                    ColumnSpec::Uniform("status", 0, 4)};
  CheckOk(GenerateTable(&db, orders));

  TableSpec cust;
  cust.name = "cust";
  cust.num_rows = 2000;
  cust.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("region", 0, 9)};
  cust.seed = 5;
  CheckOk(GenerateTable(&db, cust));

  TableSpec region;
  region.name = "region";
  region.num_rows = 10;
  region.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("pop", 1, 100)};
  region.seed = 6;
  CheckOk(GenerateTable(&db, region));

  CheckOk(db.catalog()->CreateIndex("idx_orders_cust", "orders", {"cust"}, false).status());

  const struct {
    const char* label;
    const char* sql;
  } queries[] = {
      {"full scan", "SELECT count(*) FROM orders"},
      {"5% selection", "SELECT count(*) FROM orders WHERE amount <= 500"},
      {"point selection", "SELECT count(*) FROM orders WHERE id = 777"},
      {"conjunction", "SELECT count(*) FROM orders WHERE status = 2 AND amount < 5000"},
      {"2-way join", "SELECT count(*) FROM orders, cust WHERE orders.cust = cust.id"},
      {"filtered join",
       "SELECT count(*) FROM orders, cust WHERE orders.cust = cust.id AND cust.region = 3"},
      {"3-way join",
       "SELECT count(*) FROM orders, cust, region "
       "WHERE orders.cust = cust.id AND cust.region = region.id"},
      {"3-way + filters",
       "SELECT count(*) FROM orders, cust, region WHERE orders.cust = cust.id AND "
       "cust.region = region.id AND orders.amount < 2000 AND region.id < 5"},
  };

  TablePrinter table({"query", "est_rows", "rows", "rows_q", "est_io", "io(actual)", "io_q",
                      "est_cpu", "tuples"});
  double worst_rows_q = 1, worst_io_q = 1;
  for (const auto& q : queries) {
    PhysicalPtr plan = Unwrap(db.PlanQuery(q.sql));
    // est_rows at the root counts the aggregate's single row; read the join
    // block's estimate one level down (below Project/Aggregate).
    const PhysicalNode* node = plan.get();
    while (node->kind() == PhysicalNodeKind::kProject ||
           node->kind() == PhysicalNodeKind::kAggregate) {
      node = node->child(0);
    }
    double est_rows = node->est_rows();
    Measured m = RunPlanMeasured(&db, *plan);

    // Actual "interesting" rows: tuples flowing into the aggregate == rows of
    // the join block. Recover by running the inner block? Approximate with
    // the count(*) result itself.
    QueryResult count_result = Unwrap(db.Execute(q.sql));
    double actual_rows = static_cast<double>(count_result.rows[0].At(0).AsInt());

    double actual_io = static_cast<double>(m.actual_reads + m.actual_writes);
    double rows_q = QError(est_rows, actual_rows);
    double io_q = QError(std::max(m.est_io, 1.0), std::max(actual_io, 1.0));
    worst_rows_q = std::max(worst_rows_q, rows_q);
    worst_io_q = std::max(worst_io_q, io_q);
    table.AddRow({q.label, F(est_rows), F(actual_rows, 0), F(rows_q, 2), F(m.est_io),
                  F(actual_io, 0), F(io_q, 2), F(plan->est_cost().cpu_tuples, 0),
                  FInt(m.tuples)});
  }
  table.Print();
  std::printf("\nworst rows q-error: %.2f   worst io q-error: %.2f\n", worst_rows_q, worst_io_q);
  return 0;
}
