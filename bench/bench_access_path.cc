// T2 — Access-path selection: seq scan vs index scan vs predicate
// selectivity, clustered and unclustered.
//
// Expected shape: the unclustered index wins only below a few percent
// selectivity (random heap fetches kill it); the clustered index wins over a
// much wider range; the seq scan is flat. The optimizer's pick should track
// the measured winner.
#include <cstdio>

#include "common.h"
#include "expr/binder.h"
#include "optimizer/access_path.h"
#include "parser/parser.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

constexpr uint64_t kRows = 100000;
constexpr int64_t kDomain = 100000;  // k uniform in [0, kDomain)

/// Builds the graph for "SELECT ... FROM <t> WHERE k < X" and returns all
/// access paths with their built plans measured.
void RunSweep(Database* db, const std::string& table, bool clustered) {
  std::printf("\n-- %s (%s index on k) --\n", table.c_str(),
              clustered ? "CLUSTERED" : "unclustered");
  TablePrinter printer({"selectivity", "path", "est_io", "reads(actual)", "tuples", "ms",
                        "optimizer picks"});

  const double fracs[] = {0.0001, 0.001, 0.01, 0.05, 0.1, 0.3, 0.5, 1.0};
  for (double frac : fracs) {
    int64_t bound = static_cast<int64_t>(frac * kDomain);
    std::string sql = "SELECT count(*) FROM " + table + " WHERE k < " + std::to_string(bound);

    // Build the query graph once; enumerate paths; run each.
    StatementPtr stmt = Unwrap(ParseStatement(sql));
    Binder binder(db->catalog());
    LogicalPtr logical = Unwrap(binder.BindSelect(static_cast<SelectStmt*>(stmt.get())));
    LogicalPtr node = std::move(logical);
    while (node->kind() != LogicalNodeKind::kFilter && node->kind() != LogicalNodeKind::kScan) {
      node = node->TakeChild(0);
    }
    QueryGraph graph = Unwrap(BuildQueryGraph(std::move(node), db->catalog()));
    AliasMap aliases;
    for (const BaseRelation& rel : graph.relations) aliases[rel.alias] = rel.table;
    SelectivityEstimator estimator(&aliases, StatsMode::kHistogram);
    CostModel cost_model(db->pool()->capacity());
    std::vector<AccessPath> paths =
        Unwrap(EnumerateAccessPaths(graph, 0, estimator, cost_model, true));

    // What would the whole optimizer pick?
    PhysicalPtr chosen = Unwrap(db->PlanQuery(sql));
    std::string picked = chosen->ToString().find("IndexScan") != std::string::npos
                             ? "index"
                             : "seqscan";

    for (const AccessPath& path : paths) {
      // Skip the unbounded order-only index path; it is never competitive
      // here and clutters the sweep.
      if (path.index != nullptr && path.consumed.empty()) continue;
      PhysicalPtr plan = Unwrap(BuildAccessPathPlan(graph, path));
      Measured m = RunPlanMeasured(db, *plan);
      const char* name = path.index == nullptr ? "seqscan" : "index";
      printer.AddRow({F(frac, 4), name, F(path.cost.page_ios), FInt(m.actual_reads),
                      FInt(m.tuples), F(m.millis, 2), picked});
    }
  }
  printer.Print();
}

}  // namespace

int main() {
  std::printf("T2: access-path selection -- 100k-row table, predicate k < X swept over\n"
              "selectivities; each path executed cold. Crossover: the index should win\n"
              "only at low selectivity (unclustered) or much wider (clustered).\n");

  SessionOptions options;
  options.buffer_pool_pages = 256;
  Database db(options);

  // Unclustered: heap in random order, secondary index on k.
  TableSpec t;
  t.name = "t_uncl";
  t.num_rows = kRows;
  t.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, kDomain - 1),
               ColumnSpec::Uniform("pad", 0, 1000000)};
  CheckOk(GenerateTable(&db, t));
  CheckOk(db.catalog()->CreateIndex("idx_uncl_k", "t_uncl", {"k"}, false).status());

  // Clustered: heap physically sorted by k.
  TableSpec c = t;
  c.name = "t_clus";
  c.sort_by = "k";
  CheckOk(GenerateTable(&db, c));
  CheckOk(db.catalog()->CreateIndex("idx_clus_k", "t_clus", {"k"}, true).status());

  RunSweep(&db, "t_uncl", false);
  RunSweep(&db, "t_clus", true);
  return 0;
}
