// T6 — Rewrite/optimization ablation: the full optimizer vs the naive
// direct translation (NLJs in FROM order, WHERE evaluated on top).
//
// Expected shape: pushing selections into the scans and picking join order/
// methods cuts tuples processed by orders of magnitude on filtered joins —
// the headline argument for doing optimization at all.
#include <cstdio>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

int main() {
  std::printf("T6: optimizer vs naive translation (selection pushdown + join order +\n"
              "method selection, all-or-nothing). speedup = naive tuples / optimized.\n\n");

  SessionOptions options;
  options.buffer_pool_pages = 128;
  Database db(options);

  TableSpec a;
  a.name = "a";
  a.num_rows = 2000;
  a.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 199),
               ColumnSpec::Uniform("v", 0, 9999)};
  CheckOk(GenerateTable(&db, a));
  TableSpec b = a;
  b.name = "b";
  b.seed = 13;
  CheckOk(GenerateTable(&db, b));
  TableSpec c = a;
  c.name = "c";
  c.num_rows = 200;
  c.seed = 14;
  CheckOk(GenerateTable(&db, c));

  const struct {
    const char* label;
    const char* sql;
  } queries[] = {
      {"filtered 2-way",
       "SELECT count(*) FROM a, b WHERE a.k = b.k AND a.v < 100 AND b.v < 500"},
      {"selective point join",
       "SELECT count(*) FROM a, b WHERE a.k = b.k AND a.id = 77"},
      {"3-way with filters",
       "SELECT count(*) FROM a, b, c WHERE a.k = b.k AND b.k = c.k AND a.v < 50 AND c.v < 1000"},
      {"unfiltered 2-way (order/method only)",
       "SELECT count(*) FROM c, a WHERE c.k = a.k"},
  };

  TablePrinter table({"query", "mode", "tuples", "reads", "writes", "ms", "speedup(tuples)"});
  for (const auto& q : queries) {
    db.options().optimizer.naive = true;
    PhysicalPtr naive_plan = Unwrap(db.PlanQuery(q.sql));
    db.options().optimizer.naive = false;
    Measured opt = RunMeasured(&db, q.sql);
    // The naive plan can be so bad it is not executable in reasonable time;
    // in that case report its estimated work (that IS the result).
    if (naive_plan->est_cost().cpu_tuples < 2e7) {
      Measured naive = RunPlanMeasured(&db, *naive_plan);
      double speedup = static_cast<double>(naive.tuples) /
                       static_cast<double>(std::max<uint64_t>(1, opt.tuples));
      table.AddRow({q.label, "naive", FInt(naive.tuples), FInt(naive.actual_reads),
                    FInt(naive.actual_writes), F(naive.millis, 1), ""});
      table.AddRow({q.label, "optimized", FInt(opt.tuples), FInt(opt.actual_reads),
                    FInt(opt.actual_writes), F(opt.millis, 1), F(speedup, 1) + "x"});
    } else {
      double est_speedup = naive_plan->est_cost().cpu_tuples /
                           static_cast<double>(std::max<uint64_t>(1, opt.tuples));
      table.AddRow({q.label, "naive",
                    F(naive_plan->est_cost().cpu_tuples, 0) + " (est)", "-", "-", "-", ""});
      table.AddRow({q.label, "optimized", FInt(opt.tuples), FInt(opt.actual_reads),
                    FInt(opt.actual_writes), F(opt.millis, 1), F(est_speedup, 0) + "x (est)"});
    }
  }
  table.Print();
  return 0;
}
