// S1 — Multi-session serving throughput: shared plan cache on vs off.
//
// Drives one Database from 1/2/4/8 client threads (one Session each) over
// the mixed parameterized template workload in workload/serving.h, with the
// shared plan cache enabled and disabled. The workload is deterministic per
// (seed, thread, query index), and every run reports an order-independent
// checksum over all result rows — so the cache-on and cache-off runs of the
// same configuration must produce bit-identical checksums, which this
// binary enforces (along with zero errors and nonzero cache hits when the
// cache is on). Expected shape: with five templates and hundreds of
// executions per thread, nearly every execution after warm-up is a cache
// hit that skips parse+rewrite+join enumeration entirely, so cache-on
// throughput is strictly higher; the gap widens with the optimizer share of
// total latency (small fixture => optimization is a large fraction).
//
// A final row re-runs the 4-thread workload through Session::Execute with
// literals rendered into the SQL text (no prepared statements): the cache
// keys on normalized text, so repeated literal combinations still hit, and
// the checksum must again match the prepared run.
//
// argv[1] overrides queries per thread (tiny values = CI smoke runs);
// argv[2] overrides the emp fixture row count.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "engine/plan_cache.h"
#include "workload/serving.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct RunPoint {
  size_t threads = 0;
  bool cache = false;
  bool prepared = true;
  ServingWorkloadResult r;
};

void DumpSummary(const std::vector<RunPoint>& points, size_t queries_per_thread,
                 size_t emp_rows) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/serving_summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"queries_per_thread\":%zu,\"emp_rows\":%zu,\"points\":[",
               queries_per_thread, emp_rows);
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(f,
                 "%s{\"threads\":%zu,\"plan_cache\":%s,\"prepared\":%s,"
                 "\"queries\":%llu,\"errors\":%llu,\"qps\":%.1f,"
                 "\"p50_micros\":%.1f,\"p99_micros\":%.1f,"
                 "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                 "\"checksum\":\"%016llx\"}",
                 i == 0 ? "" : ",", p.threads, p.cache ? "true" : "false",
                 p.prepared ? "true" : "false",
                 static_cast<unsigned long long>(p.r.total_queries),
                 static_cast<unsigned long long>(p.r.errors), p.r.queries_per_second,
                 p.r.p50_micros, p.r.p99_micros,
                 static_cast<unsigned long long>(p.r.cache_hits),
                 static_cast<unsigned long long>(p.r.cache_misses),
                 static_cast<unsigned long long>(p.r.result_checksum));
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

void Die(const std::string& message) {
  std::fprintf(stderr, "bench_serving: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  size_t queries_per_thread = 400;
  size_t emp_rows = 1000;
  if (argc > 1) queries_per_thread = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  if (queries_per_thread == 0) queries_per_thread = 400;
  if (argc > 2) emp_rows = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  if (emp_rows == 0) emp_rows = 1000;

  std::printf(
      "S1: multi-session serving -- %zu queries/thread over the 5-template\n"
      "mix (emp=%zu rows), 1/2/4/8 client sessions, shared plan cache off vs\n"
      "on. Checksums are order-independent row digests and must be identical\n"
      "within a thread count regardless of caching or prepare mode.\n\n",
      queries_per_thread, emp_rows);

  SessionOptions options;
  options.buffer_pool_pages = 256;
  Database db(options);
  CheckOk(LoadServingFixture(&db, static_cast<int>(emp_rows)));

  const std::vector<ServingQueryTemplate> mix = DefaultServingMix();
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  std::vector<RunPoint> points;
  TablePrinter table(
      {"threads", "cache", "mode", "queries", "qps", "p50_us", "p99_us", "hits", "misses",
       "checksum"});
  double qps_4_off = 0, qps_4_on = 0;
  uint64_t checksum_4_on = 0;

  auto run = [&](size_t threads, bool cache, bool prepared) -> ServingWorkloadResult {
    db.plan_cache()->Clear();
    db.plan_cache()->set_enabled(cache);
    ServingWorkloadOptions wo;
    wo.num_threads = threads;
    wo.queries_per_thread = queries_per_thread;
    wo.use_prepared = prepared;
    ServingWorkloadResult r = Unwrap(RunServingWorkload(&db, mix, wo));
    if (r.errors != 0) Die("workload reported " + std::to_string(r.errors) + " errors");
    if (cache && r.cache_hits == 0) Die("plan cache enabled but no hits recorded");
    if (!cache && r.cache_hits != 0) Die("plan cache disabled but hits recorded");
    points.push_back({threads, cache, prepared, r});
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(r.result_checksum));
    table.AddRow({FInt(threads), cache ? "on" : "off", prepared ? "prepared" : "text",
                  FInt(r.total_queries), F(r.queries_per_second, 0), F(r.p50_micros, 0),
                  F(r.p99_micros, 0), FInt(r.cache_hits), FInt(r.cache_misses), checksum});
    return r;
  };

  for (size_t threads : kThreadCounts) {
    ServingWorkloadResult off = run(threads, /*cache=*/false, /*prepared=*/true);
    ServingWorkloadResult on = run(threads, /*cache=*/true, /*prepared=*/true);
    if (on.result_checksum != off.result_checksum) {
      Die("checksum mismatch at " + std::to_string(threads) +
          " threads: cache-on and cache-off runs returned different rows");
    }
    if (threads == 4) {
      qps_4_off = off.queries_per_second;
      qps_4_on = on.queries_per_second;
      checksum_4_on = on.result_checksum;
    }
  }

  // Text mode: literals rendered into the SQL, cache keyed on normalized
  // text. Must return the same rows as the prepared 4-thread run.
  ServingWorkloadResult text = run(4, /*cache=*/true, /*prepared=*/false);
  if (text.result_checksum != checksum_4_on) {
    Die("checksum mismatch: text-mode run differs from prepared run at 4 threads");
  }

  table.Print();
  std::printf("\nheadline: 4-session throughput with the shared plan cache is %.2fx the\n"
              "cache-off baseline (%.0f vs %.0f queries/sec), identical checksums\n",
              qps_4_off > 0 ? qps_4_on / qps_4_off : 0, qps_4_on, qps_4_off);
  DumpSummary(points, queries_per_thread, emp_rows);
  MaybeDumpMetricsSnapshot();
  return 0;
}
