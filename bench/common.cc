#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/str_util.h"

namespace relopt {
namespace bench {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TablePrinter::Print() const {
  std::vector<size_t> widths;
  for (const std::string& h : headers_) widths.push_back(h.size());
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.push_back(0);
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      std::printf("%s%-*s", i == 0 ? "| " : " | ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf(" |\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t w : widths) {
    std::printf("%s|", std::string(w + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string F(double v, int precision) { return StringPrintf("%.*f", precision, v); }

std::string FInt(uint64_t v) { return std::to_string(v); }

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void MaybeDumpProfile(const Measured& m, const std::string& label) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0' || !m.profile.valid) return;
  auto write_file = [&](const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      RELOPT_LOG(kWarn) << "cannot write " << path;
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  };
  std::string base = std::string(dir) + "/" + label;
  write_file(base + ".profile.json", m.profile.ToJson());
  write_file(base + ".trace.json", m.profile.ToChromeTrace());
}

void MaybeDumpMetricsSnapshot() {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    RELOPT_LOG(kWarn) << "cannot write " << path;
    return;
  }
  std::string body = MetricsRegistry::Global().ToJson();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

Measured RunPlanMeasured(Database* db, const PhysicalNode& plan) {
  Measured m;
  m.est_total_cost = plan.est_cost().Total();
  m.est_io = plan.est_cost().page_ios;
  m.est_rows = plan.est_rows();
  m.plan = plan.ToString();

  // Cold cache: write back and drop everything evictable.
  CheckOk(db->pool()->FlushAll());
  CheckOk(db->pool()->EvictAll());
  db->ResetCounters();

  auto start = std::chrono::steady_clock::now();
  QueryResult result = Unwrap(db->ExecutePlan(plan));
  auto end = std::chrono::steady_clock::now();

  const ExecutionMetrics& metrics = db->last_metrics();
  m.actual_reads = metrics.io.page_reads;
  m.actual_writes = metrics.io.page_writes;
  m.pool_accesses = metrics.pool.hits + metrics.pool.misses;
  m.tuples = metrics.tuples_processed;
  m.rows = result.rows.size();
  m.millis = std::chrono::duration<double, std::milli>(end - start).count();
  m.profile = db->last_profile();

  // Numbered dump per process so repeated runs don't clobber each other.
  static int run_counter = 0;
  MaybeDumpProfile(m, StringPrintf("run%04d", run_counter++));
  MaybeDumpMetricsSnapshot();
  return m;
}

Measured RunMeasured(Database* db, const std::string& sql) {
  PhysicalPtr plan = Unwrap(db->PlanQuery(sql));
  return RunPlanMeasured(db, *plan);
}

PlannedOnly PlanMeasured(Database* db, const std::string& sql) {
  PlannedOnly p;
  OptimizeInfo info;
  auto start = std::chrono::steady_clock::now();
  PhysicalPtr plan = Unwrap(db->PlanQuery(sql, &info));
  auto end = std::chrono::steady_clock::now();
  p.est_total_cost = plan->est_cost().Total();
  p.millis = std::chrono::duration<double, std::milli>(end - start).count();
  p.stats = info.enum_stats;
  p.plan = plan->ToString();
  return p;
}

}  // namespace bench
}  // namespace relopt
