// F1 — Optimization cost: enumeration work and wall time vs number of joins.
//
// Expected shape: exhaustive permutation search grows super-exponentially
// (n! orders) and becomes impractical around n=8-9; Selinger DP grows like
// n*2^n (left-deep) / 3^n (bushy) and stays tractable through n=12; greedy is
// ~n^3 and trivial everywhere.
#include <cstdio>

#include "common.h"
#include "workload/queries.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct Algo {
  JoinEnumAlgorithm algorithm;
  int max_n;
};

void Sweep(const char* topology, int max_n, const Algo* algos, size_t num_algos) {
  std::printf("\n-- %s topology --\n", topology);
  TablePrinter table({"n", "algorithm", "joins_costed", "dp_entries", "plan_ms", "est_cost"});
  for (int n = 2; n <= max_n; ++n) {
    SessionOptions options;
    options.buffer_pool_pages = 128;
    Database db(options);
    JoinWorkloadSpec spec;
    spec.num_relations = n;
    spec.base_rows = 50;  // enumeration cost does not depend on data volume
    spec.growth = 1.6;
    spec.dim_rows = 20;
    std::string query = std::string(topology) == "chain"
                            ? Unwrap(BuildChainWorkload(&db, spec))
                            : Unwrap(BuildStarWorkload(&db, spec));

    for (size_t a = 0; a < num_algos; ++a) {
      if (n > algos[a].max_n) {
        table.AddRow({FInt(n), JoinEnumAlgorithmToString(algos[a].algorithm), "(skipped)", "-",
                      "-", "-"});
        continue;
      }
      db.options().optimizer.join.algorithm = algos[a].algorithm;
      PlannedOnly p = PlanMeasured(&db, query);
      table.AddRow({FInt(n), JoinEnumAlgorithmToString(algos[a].algorithm),
                    FInt(p.stats.joins_costed), FInt(p.stats.dp_entries), F(p.millis, 2),
                    F(p.est_total_cost)});
    }
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("F1: optimizer cost vs number of relations.\n"
              "joins_costed = (left,right,method) combinations costed.\n"
              "On the chain, cross-product avoidance shrinks every strategy; the star\n"
              "is where exhaustive's (n-1)! orders explode while DP stays ~n*2^n.\n"
              "Exhaustive is skipped above n=8 and DP-bushy above n=10 (the blow-up\n"
              "is the result).\n");

  const Algo chain_algos[] = {{JoinEnumAlgorithm::kDpBushy, 10},
                              {JoinEnumAlgorithm::kDpLeftDeep, 12},
                              {JoinEnumAlgorithm::kGreedy, 12},
                              {JoinEnumAlgorithm::kExhaustive, 8}};
  Sweep("chain", 12, chain_algos, 4);

  const Algo star_algos[] = {{JoinEnumAlgorithm::kDpBushy, 9},
                             {JoinEnumAlgorithm::kDpLeftDeep, 11},
                             {JoinEnumAlgorithm::kGreedy, 11},
                             {JoinEnumAlgorithm::kExhaustive, 8}};
  Sweep("star", 11, star_algos, 4);
  return 0;
}
