// E1 — Batch expression engine vs row-at-a-time expression evaluation.
//
// Expression-heavy queries over a ~200k-row table: nested arithmetic,
// OR-chains, CASE, NULL-handling functions (coalesce/nullif/IS NULL), string
// functions, expression sort keys, and expression group keys. Each query runs
// row-at-a-time and with batch sizes 64/1024. Expected shape: compiled column
// kernels amortize per-row Eval dispatch and Value boxing, so the deeper the
// expression tree, the bigger the batch win. Page reads are identical across
// modes, and the `fallback` column (rows evaluated through the row-loop
// adapter or a compiled-tree FallbackNode) must read 0 for every query here —
// the corpus is fully covered by the kernel engine. The optional argv[1]
// overrides the row count (tiny values = sanitizer smoke runs).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct RunPoint {
  std::string query_label;
  std::string mode;  // "row", "batch64", "batch1024"
  size_t batch_size = 0;  // 0 = row mode
  double ms = 0;
  uint64_t reads = 0;
  uint64_t rows = 0;
  uint64_t fallback = 0;
  double speedup = 1.0;  // row_ms / ms
};

uint64_t SumFallback(const OperatorProfile& p) {
  uint64_t total = p.stats.fallback_rows;
  for (const OperatorProfile& c : p.children) total += SumFallback(c);
  return total;
}

void DumpSummary(const std::vector<RunPoint>& points, size_t table_rows) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/expr_summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"table_rows\":%zu,\"points\":[", table_rows);
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(f,
                 "%s{\"query\":\"%s\",\"mode\":\"%s\",\"batch_size\":%zu,\"ms\":%.3f,"
                 "\"page_reads\":%llu,\"rows\":%llu,\"fallback_rows\":%llu,"
                 "\"speedup_vs_row\":%.3f}",
                 i == 0 ? "" : ",", p.query_label.c_str(), p.mode.c_str(), p.batch_size, p.ms,
                 static_cast<unsigned long long>(p.reads),
                 static_cast<unsigned long long>(p.rows),
                 static_cast<unsigned long long>(p.fallback), p.speedup);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

Measured BestOf3(Database* db, const std::string& sql) {
  Measured best;
  for (int rep = 0; rep < 3; ++rep) {
    Measured m = RunMeasured(db, sql);
    if (rep == 0 || m.millis < best.millis) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t table_rows = 200000;
  if (argc > 1) table_rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  if (table_rows == 0) table_rows = 200000;

  std::printf(
      "E1: batch expression engine vs row-at-a-time Eval -- %zu-row table,\n"
      "expression-heavy queries at batch sizes 64/1024 vs the row loop.\n"
      "Identical page reads; `fallback` must be 0 (full kernel coverage).\n\n",
      table_rows);

  SessionOptions options;
  options.buffer_pool_pages = 512;
  Database db(options);

  TableSpec t;
  t.name = "t";
  t.num_rows = table_rows;
  ColumnSpec n = ColumnSpec::Uniform("n", 0, 999);
  n.null_fraction = 0.5;
  ColumnSpec s;
  s.name = "s";
  s.type = TypeId::kString;
  s.dist = ColumnDist::kRandomString;
  s.string_length = 12;
  t.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("a", 0, 1000000),
               ColumnSpec::Uniform("b", 0, 999), n, s};
  CheckOk(GenerateTable(&db, t));

  struct QuerySpec {
    const char* label;
    std::string sql;
  };
  const QuerySpec kQueries[] = {
      {"nested_arith", "SELECT id, (a * 3 + b) * 2 - a / 4 FROM t"},
      {"or_chain", "SELECT id FROM t WHERE b < 50 OR b > 950 OR a % 97 = 0 OR id = 12345"},
      {"case_project",
       "SELECT id, CASE WHEN a > 750000 THEN 3 WHEN a > 500000 THEN 2 "
       "WHEN a > 250000 THEN 1 ELSE 0 END FROM t"},
      {"null_funcs",
       "SELECT count(*), sum(coalesce(n, 0 - 1)) FROM t WHERE n IS NULL OR n > 500"},
      {"string_funcs", "SELECT length(s), upper(s) FROM t WHERE lower(s) < 'm'"},
      {"expr_sort_key", "SELECT id FROM t ORDER BY a % 1000 ASC, id ASC LIMIT 100"},
      {"expr_group_key", "SELECT a % 16, count(*), sum(b) FROM t GROUP BY a % 16"},
  };
  const size_t kBatchSizes[] = {64, 1024};

  std::vector<RunPoint> points;
  TablePrinter table({"query", "mode", "ms", "reads", "rows", "fallback", "speedup_vs_row"});
  double headline_speedup = 0;  // nested_arith @ 1024
  uint64_t total_batch_fallback = 0;

  for (const QuerySpec& q : kQueries) {
    db.set_vectorized(false);
    Measured row = BestOf3(&db, q.sql);
    points.push_back({q.label, "row", 0, row.millis, row.actual_reads, row.rows, 0, 1.0});
    table.AddRow({q.label, "row", F(row.millis, 2), FInt(row.actual_reads), FInt(row.rows),
                  FInt(0), F(1.0, 2)});
    MaybeDumpProfile(row, std::string("expr_") + q.label + "_row");

    db.set_vectorized(true);
    for (size_t bs : kBatchSizes) {
      db.set_batch_size(bs);
      Measured vec = BestOf3(&db, q.sql);
      uint64_t fallback = vec.profile.valid ? SumFallback(vec.profile.root) : 0;
      total_batch_fallback += fallback;
      double speedup = vec.millis > 0 ? row.millis / vec.millis : 0;
      std::string mode = "batch" + std::to_string(bs);
      points.push_back(
          {q.label, mode, bs, vec.millis, vec.actual_reads, vec.rows, fallback, speedup});
      table.AddRow({q.label, mode, F(vec.millis, 2), FInt(vec.actual_reads), FInt(vec.rows),
                    FInt(fallback), F(speedup, 2)});
      if (std::string(q.label) == "nested_arith" && bs == 1024) {
        headline_speedup = speedup;
        MaybeDumpProfile(vec, "expr_nested_arith_batch1024");
      }
      if (vec.actual_reads != row.actual_reads) {
        std::fprintf(stderr, "FATAL: page reads diverged on %s (%llu row vs %llu batch%zu)\n",
                     q.label, static_cast<unsigned long long>(row.actual_reads),
                     static_cast<unsigned long long>(vec.actual_reads), bs);
        return 1;
      }
      if (vec.rows != row.rows) {
        std::fprintf(stderr, "FATAL: result rows diverged on %s\n", q.label);
        return 1;
      }
    }
    db.set_batch_size(TupleBatch::kDefaultCapacity);
  }

  table.Print();
  std::printf("\nheadline: nested arithmetic @ batch 1024 is %.2fx row-at-a-time\n",
              headline_speedup);
  std::printf("total batch fallback rows across the corpus: %llu\n",
              static_cast<unsigned long long>(total_batch_fallback));
  if (total_batch_fallback != 0) {
    std::fprintf(stderr, "FATAL: expression corpus fell back to row-at-a-time evaluation\n");
    return 1;
  }
  DumpSummary(points, table_rows);
  MaybeDumpMetricsSnapshot();
  return 0;
}
