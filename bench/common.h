// Shared benchmark utilities: aligned table printing and measured execution.
//
// Each bench binary regenerates one table/figure of the evaluation (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
// Results are printed as aligned text tables; timing uses steady_clock and
// cost/I-O numbers come from the engine's own counters, so runs are
// deterministic apart from wall-clock columns.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "engine/database.h"

namespace relopt {
namespace bench {

/// Aligned fixed-width table printer for experiment output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string F(double v, int precision = 1);
std::string FInt(uint64_t v);

/// Measured execution of one SQL query with a cold cache.
struct Measured {
  double est_total_cost = 0;   ///< optimizer cost estimate (weighted total)
  double est_io = 0;           ///< estimated page I/Os
  double est_rows = 0;
  uint64_t actual_reads = 0;   ///< physical page reads (cold cache)
  uint64_t actual_writes = 0;
  uint64_t pool_accesses = 0;  ///< logical page accesses (hits + misses)
  uint64_t tuples = 0;         ///< tuples processed by operators
  uint64_t rows = 0;           ///< result rows
  double millis = 0;
  std::string plan;            ///< rendered physical plan
  PlanProfile profile;         ///< per-operator actuals of this execution
};

/// Plans and executes `sql` on a cold buffer pool, collecting all counters.
/// Aborts the process on error (benchmark context).
Measured RunMeasured(Database* db, const std::string& sql);

/// Executes an already-built plan on a cold cache.
Measured RunPlanMeasured(Database* db, const PhysicalNode& plan);

/// When the RELOPT_BENCH_JSON_DIR environment variable names a directory,
/// writes `<dir>/<label>.profile.json` (per-operator metrics) and
/// `<dir>/<label>.trace.json` (chrome://tracing event array) for one
/// measured run. No-op when the variable is unset or the profile is empty.
void MaybeDumpProfile(const Measured& m, const std::string& label);

/// When RELOPT_BENCH_JSON_DIR is set, overwrites `<dir>/metrics.json` with
/// the current global MetricsRegistry snapshot, so every benchmark leaves the
/// engine-wide counters next to its per-run result files. Called after each
/// measured run; the final write reflects the whole process.
void MaybeDumpMetricsSnapshot();

/// Plans only (no execution) and reports optimizer stats + elapsed time.
struct PlannedOnly {
  double est_total_cost = 0;
  double millis = 0;
  JoinEnumStats stats;
  std::string plan;
};
PlannedOnly PlanMeasured(Database* db, const std::string& sql);

/// Dies with a message if `status` is not OK.
void CheckOk(const Status& status);

template <typename T>
T Unwrap(Result<T> result) {
  CheckOk(result.status());
  return result.MoveValue();
}

}  // namespace bench
}  // namespace relopt
