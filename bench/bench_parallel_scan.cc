// P1 — Morsel-driven parallel scaling.
//
// A scan-heavy filter and a hash join over a ~200k-row table, executed at
// parallelism 1/2/4/8. Expected shape ON MULTI-CORE HARDWARE: near-linear
// scan speedup to the physical core count, then flat; the join scales less
// (shared build barrier + probe table construction). On a single hardware
// thread the curve is flat-to-slightly-negative — the parallel machinery
// (pool handoffs, queue locking) costs a few percent with nothing to run
// concurrently; the printed `hw_threads` column makes that context explicit.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct RunPoint {
  std::string query_label;
  size_t parallelism = 1;
  double ms = 0;
  uint64_t reads = 0;
  uint64_t rows = 0;
  double speedup = 1.0;
};

void DumpSummary(const std::vector<RunPoint>& points, unsigned hw_threads) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/parallel_scan_summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"hardware_threads\":%u,\"points\":[", hw_threads);
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(f,
                 "%s{\"query\":\"%s\",\"parallelism\":%zu,\"ms\":%.3f,"
                 "\"page_reads\":%llu,\"rows\":%llu,\"speedup\":%.3f}",
                 i == 0 ? "" : ",", p.query_label.c_str(), p.parallelism, p.ms,
                 static_cast<unsigned long long>(p.reads),
                 static_cast<unsigned long long>(p.rows), p.speedup);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf(
      "P1: morsel-driven parallel scaling -- 200k-row scan + join at "
      "parallelism 1/2/4/8.\nhardware threads: %u  (speedup saturates at the "
      "physical core count;\non a 1-thread host the parallel engine can only "
      "break even)\n\n",
      hw_threads);

  SessionOptions options;
  options.buffer_pool_pages = 512;
  Database db(options);

  TableSpec big;
  big.name = "big";
  big.num_rows = 200000;
  big.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 999),
                 ColumnSpec::Uniform("pad", 0, 1000000)};
  CheckOk(GenerateTable(&db, big));

  TableSpec dim;
  dim.name = "dim";
  dim.num_rows = 1000;
  dim.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("v", 0, 100)};
  dim.seed = 99;
  CheckOk(GenerateTable(&db, dim));

  struct QuerySpec {
    const char* label;
    const char* sql;
  };
  const QuerySpec kQueries[] = {
      {"scan_filter", "SELECT count(*) FROM big WHERE pad < 500000"},
      {"hash_join", "SELECT count(*) FROM big, dim WHERE big.k = dim.id"},
  };

  std::vector<RunPoint> points;
  TablePrinter table({"query", "parallelism", "ms", "reads", "rows", "speedup", "hw_threads"});
  for (const QuerySpec& q : kQueries) {
    double serial_ms = 0;
    for (size_t par : {1, 2, 4, 8}) {
      db.set_parallelism(par);
      // Median-ish of 3: the first run also warms allocator state.
      Measured best;
      for (int rep = 0; rep < 3; ++rep) {
        Measured m = RunMeasured(&db, q.sql);
        if (rep == 0 || m.millis < best.millis) best = m;
      }
      if (par == 1) serial_ms = best.millis;
      RunPoint p;
      p.query_label = q.label;
      p.parallelism = par;
      p.ms = best.millis;
      p.reads = best.actual_reads;
      p.rows = best.rows;
      p.speedup = best.millis > 0 ? serial_ms / best.millis : 0;
      points.push_back(p);
      table.AddRow({q.label, FInt(par), F(best.millis, 2), FInt(best.actual_reads),
                    FInt(best.rows), F(p.speedup, 2), FInt(hw_threads)});
      MaybeDumpProfile(best, std::string("parallel_") + q.label + "_p" + std::to_string(par));
    }
  }
  db.set_parallelism(1);
  table.Print();
  DumpSummary(points, hw_threads);
  return 0;
}
