// T3 — Plan quality: cost of each enumeration strategy's plan relative to
// the DP optimum, across join-graph topologies.
//
// Expected shape: DP-bushy <= DP-left-deep <= greedy (small factor on chains,
// larger on stars/cliques); random is erratic; worst is orders of magnitude
// off — the classic argument for cost-based join ordering. Where feasible,
// plans are also executed and measured (tuples processed) to confirm the
// estimated ordering is real.
#include <cstdio>

#include "common.h"
#include "workload/queries.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

void RunTopology(const char* topology, int n) {
  SessionOptions options;
  options.buffer_pool_pages = 128;
  Database db(options);
  JoinWorkloadSpec spec;
  spec.num_relations = n;
  spec.seed = 11;
  std::string query;
  if (std::string(topology) == "chain") {
    spec.base_rows = 300;
    spec.growth = 2.5;
    query = Unwrap(BuildChainWorkload(&db, spec));
  } else if (std::string(topology) == "star") {
    spec.base_rows = 3000;
    spec.dim_rows = 30;
    spec.growth = 3.0;
    query = Unwrap(BuildStarWorkload(&db, spec));
  } else {
    spec.base_rows = 60;
    spec.growth = 1.8;
    query = Unwrap(BuildCliqueWorkload(&db, spec));
  }

  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  PlannedOnly dp = PlanMeasured(&db, query);
  double baseline = dp.est_total_cost;

  TablePrinter table({"algorithm", "est_cost", "ratio_to_dp", "tuples(actual)", "exec_ms"});
  const JoinEnumAlgorithm algos[] = {JoinEnumAlgorithm::kDpBushy, JoinEnumAlgorithm::kDpLeftDeep,
                                     JoinEnumAlgorithm::kGreedy, JoinEnumAlgorithm::kRandom,
                                     JoinEnumAlgorithm::kWorst};
  for (JoinEnumAlgorithm algo : algos) {
    db.options().optimizer.join.algorithm = algo;
    PhysicalPtr plan = Unwrap(db.PlanQuery(query));
    double est = plan->est_cost().Total();
    // Execute unless the plan is estimated to be catastrophically expensive.
    if (plan->est_cost().cpu_tuples < 5e7) {
      Measured m = RunPlanMeasured(&db, *plan);
      table.AddRow({JoinEnumAlgorithmToString(algo), F(est), F(est / baseline, 2),
                    FInt(m.tuples), F(m.millis, 1)});
    } else {
      table.AddRow({JoinEnumAlgorithmToString(algo), F(est), F(est / baseline, 2),
                    "(est only)", "-"});
    }
  }
  std::printf("\n-- %s, n=%d --\n", topology, n);
  table.Print();
}

}  // namespace

int main() {
  std::printf("T3: plan quality by enumeration strategy (cost ratio to DP-bushy).\n");
  for (int n : {4, 6}) {
    RunTopology("chain", n);
    RunTopology("star", n);
  }
  RunTopology("clique", 4);
  return 0;
}
