// A1 — Partitioned hash aggregation: row vs batch drive, serial vs morsel-parallel.
//
// Grouped (low- and high-cardinality keys) and global aggregates over a
// ~200k-row table, executed in the full mode matrix: serial row (baseline),
// serial batch 1024, and parallelism 2/4 in both drive modes. Expected shape:
// batch 1024 amortizes the per-row iterator overhead and evaluates group keys
// through the multi-column key kernel, giving >=1.5x on grouped aggregation
// even on one hardware thread; high-cardinality grouping gains less (the hash
// table dominates, not the drive loop). Parallel speedup ON MULTI-CORE
// HARDWARE adds on top of that via per-worker partitions and a disjoint
// merge; on a single hardware thread the parallel rows are flat-to-slightly-
// negative — the partition/barrier machinery costs a few percent with nothing
// to run concurrently — and the printed `hw_threads` column makes that
// context explicit. Page reads are identical across all modes by
// construction (every mode pins one page at a time through the same scan),
// which the `reads` column makes visible. The optional argv[1] overrides the
// row count (tiny values = sanitizer smoke runs).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "workload/generator.h"

using namespace relopt;
using namespace relopt::bench;

namespace {

struct RunPoint {
  std::string query_label;
  std::string mode;  // "row", "batch1024"
  size_t parallelism = 1;
  size_t batch_size = 0;  // 0 = row mode
  double ms = 0;
  uint64_t reads = 0;
  uint64_t rows = 0;
  double speedup = 1.0;  // serial_row_ms / ms
};

void DumpSummary(const std::vector<RunPoint>& points, size_t table_rows,
                 unsigned hw_threads) {
  const char* dir = std::getenv("RELOPT_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/aggregate_summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"table_rows\":%zu,\"hardware_threads\":%u,\"points\":[", table_rows,
               hw_threads);
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(f,
                 "%s{\"query\":\"%s\",\"mode\":\"%s\",\"parallelism\":%zu,"
                 "\"batch_size\":%zu,\"ms\":%.3f,\"page_reads\":%llu,\"rows\":%llu,"
                 "\"speedup_vs_serial_row\":%.3f}",
                 i == 0 ? "" : ",", p.query_label.c_str(), p.mode.c_str(), p.parallelism,
                 p.batch_size, p.ms, static_cast<unsigned long long>(p.reads),
                 static_cast<unsigned long long>(p.rows), p.speedup);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

Measured BestOf3(Database* db, const std::string& sql) {
  Measured best;
  for (int rep = 0; rep < 3; ++rep) {
    Measured m = RunMeasured(db, sql);
    if (rep == 0 || m.millis < best.millis) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t table_rows = 200000;
  if (argc > 1) table_rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  if (table_rows == 0) table_rows = 200000;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());

  std::printf(
      "A1: partitioned hash aggregation -- %zu-row table, grouped (low/high\n"
      "cardinality) and global aggregates, serial row baseline vs batch 1024\n"
      "vs parallelism 2/4 in both drive modes. hw_threads=%u: parallel rows\n"
      "only beat serial when that is > 1; the batch-drive speedup is\n"
      "thread-count independent. Page reads are identical across modes.\n\n",
      table_rows, hw_threads);

  SessionOptions options;
  options.buffer_pool_pages = 512;
  Database db(options);

  // g_low: ~10 groups (fits in cache, drive loop dominates). g_high: ~1/4 of
  // the table distinct (hash-table growth and key encoding dominate). v: the
  // aggregated payload.
  TableSpec big;
  big.name = "big";
  big.num_rows = table_rows;
  big.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("g_low", 0, 9),
                 ColumnSpec::Uniform("g_high", 0, static_cast<int64_t>(table_rows / 4)),
                 ColumnSpec::Uniform("v", 0, 10000)};
  CheckOk(GenerateTable(&db, big));

  struct QuerySpec {
    const char* label;
    const char* sql;
  };
  const QuerySpec kQueries[] = {
      {"group_low", "SELECT g_low, count(*), sum(v), min(v), max(v) FROM big GROUP BY g_low"},
      {"group_high", "SELECT g_high, count(*), sum(v) FROM big GROUP BY g_high"},
      {"group_multi", "SELECT g_low, g_high % 100, count(*), avg(v) FROM big "
                      "GROUP BY g_low, g_high % 100"},
      {"global", "SELECT count(*), sum(v), min(v), max(v), avg(v) FROM big"},
  };
  const size_t kParallelisms[] = {1, 2, 4};

  std::vector<RunPoint> points;
  TablePrinter table({"query", "mode", "par", "ms", "reads", "rows", "speedup_vs_serial_row"});
  double headline_speedup = 0;  // group_low @ serial batch 1024

  for (const QuerySpec& q : kQueries) {
    double serial_row_ms = 0;
    for (size_t par : kParallelisms) {
      db.set_parallelism(par);
      for (bool vectorized : {false, true}) {
        db.set_vectorized(vectorized);
        if (vectorized) db.set_batch_size(1024);
        Measured m = BestOf3(&db, q.sql);
        if (par == 1 && !vectorized) serial_row_ms = m.millis;
        double speedup = m.millis > 0 ? serial_row_ms / m.millis : 0;
        const char* mode = vectorized ? "batch1024" : "row";
        points.push_back({q.label, mode, par, vectorized ? size_t{1024} : size_t{0}, m.millis,
                          m.actual_reads, m.rows, speedup});
        table.AddRow({q.label, mode, FInt(par), F(m.millis, 2), FInt(m.actual_reads),
                      FInt(m.rows), F(speedup, 2)});
        if (std::string(q.label) == "group_low" && par == 1 && vectorized) {
          headline_speedup = speedup;
          MaybeDumpProfile(m, "aggregate_group_low_batch1024");
        }
        if (par == 1 && !vectorized) {
          MaybeDumpProfile(m, std::string("aggregate_") + q.label + "_row");
        }
        if (std::string(q.label) == "group_low" && par == 4 && vectorized) {
          MaybeDumpProfile(m, "aggregate_group_low_par4_batch1024");
        }
      }
    }
    db.set_parallelism(1);
    db.set_vectorized(true);
    db.set_batch_size(TupleBatch::kDefaultCapacity);
  }

  table.Print();
  std::printf(
      "\nheadline: low-cardinality grouped aggregation @ serial batch 1024 is "
      "%.2fx the serial row baseline (hw_threads=%u)\n",
      headline_speedup, hw_threads);
  DumpSummary(points, table_rows, hw_threads);
  return 0;
}
